//! A differentially private continual counter (Chan, Shi, Song, ICALP 2010),
//! cited in the paper's related work as "a counter similar to H, in which
//! items are hierarchically aggregated by arrival time".
//!
//! The mechanism observes a stream of per-step counts over a fixed horizon
//! `T` and must publish, at *every* step `t`, the running total `Σ_{i≤t}`.
//! The binary-tree construction releases each dyadic interval's count once
//! (noised), so an item affects `log T + 1` released values and any prefix
//! is a sum of at most `log T` of them — error `O(log³T/ε²)` per step.
//!
//! Structurally this *is* the paper's `H` strategy over the time domain;
//! this module adds the counter-specific API (prefix queries, the full
//! released series) and a consistency step the paper's machinery makes
//! free: the true prefix series is non-decreasing, so isotonic regression
//! (Theorem 1's solver!) projects the noisy running totals onto monotone
//! sequences — combining both of the paper's inference tools on one object.

use hc_core::isotonic_regression;
use hc_data::{Domain, Histogram, Interval};
use hc_mech::{Epsilon, HierarchicalQuery, LaplaceMechanism, TreeShape};
use rand::Rng;

/// A continual-release counter over a fixed horizon.
#[derive(Debug, Clone, Copy)]
pub struct ContinualCounter {
    epsilon: Epsilon,
    horizon: usize,
}

impl ContinualCounter {
    /// A counter for `horizon` time steps at privacy `epsilon`.
    pub fn new(epsilon: Epsilon, horizon: usize) -> Self {
        assert!(horizon >= 1, "horizon must be positive");
        Self { epsilon, horizon }
    }

    /// The horizon `T`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Processes a complete stream of per-step counts (offline simulation of
    /// the online mechanism: the set of released node values is identical,
    /// and each is released exactly once, so privacy is the same ε).
    pub fn process<R: Rng + ?Sized>(&self, stream: &[u64], rng: &mut R) -> CounterRelease {
        assert_eq!(stream.len(), self.horizon, "stream must fill the horizon");
        let domain = Domain::new("time", self.horizon).expect("horizon >= 1");
        let histogram = Histogram::from_counts(domain, stream.to_vec());
        let query = HierarchicalQuery::binary();
        let shape = query.shape(self.horizon);
        let output = LaplaceMechanism::new(self.epsilon).release(&query, &histogram, rng);
        CounterRelease {
            shape,
            horizon: self.horizon,
            noisy: output.into_values(),
        }
    }
}

/// The released counter: supports prefix queries at every time step.
#[derive(Debug, Clone)]
pub struct CounterRelease {
    shape: TreeShape,
    horizon: usize,
    noisy: Vec<f64>,
}

impl CounterRelease {
    /// The horizon `T`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The running total after step `t` (0-based, inclusive): a sum of at
    /// most `log T + 1` noisy dyadic nodes.
    pub fn prefix(&self, t: usize) -> f64 {
        assert!(t < self.horizon, "step {t} beyond horizon {}", self.horizon);
        self.shape
            .subtree_decomposition(Interval::new(0, t))
            .into_iter()
            .map(|v| self.noisy[v])
            .sum()
    }

    /// The full released running-total series (what an observer sees over
    /// the stream's lifetime).
    pub fn prefix_series(&self) -> Vec<f64> {
        (0..self.horizon).map(|t| self.prefix(t)).collect()
    }

    /// The consistency-projected series: true running totals never decrease,
    /// so the minimum-L2 monotone projection (isotonic regression) is pure
    /// post-processing that can only help — the Sec. 3 argument transplanted
    /// to the time domain.
    pub fn monotonized(&self) -> Vec<f64> {
        isotonic_regression(&self.prefix_series())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::sum_squared_error;
    use hc_noise::rng_from_seed;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn true_prefixes(stream: &[u64]) -> Vec<f64> {
        let mut acc = 0.0;
        stream
            .iter()
            .map(|&x| {
                acc += x as f64;
                acc
            })
            .collect()
    }

    #[test]
    fn noiseless_counter_is_exact() {
        // Enormous ε → negligible noise: prefixes must match the truth.
        let stream: Vec<u64> = (0..64).map(|i| (i % 3) as u64).collect();
        let counter = ContinualCounter::new(eps(1e9), 64);
        let mut rng = rng_from_seed(1);
        let release = counter.process(&stream, &mut rng);
        let truth = true_prefixes(&stream);
        for (t, want) in truth.iter().enumerate() {
            assert!((release.prefix(t) - want).abs() < 1e-3, "t = {t}");
        }
    }

    #[test]
    fn prefix_error_is_polylog_not_linear() {
        // The error at the last step must be far below what a running sum of
        // fresh unit noise (variance ∝ T) would accumulate.
        let horizon = 256;
        let stream = vec![1u64; horizon];
        let counter = ContinualCounter::new(eps(0.5), horizon);
        let mut rng = rng_from_seed(2);
        let trials = 300;
        let truth = (horizon as f64) * 1.0;
        let mut sq = 0.0;
        for _ in 0..trials {
            let release = counter.process(&stream, &mut rng);
            sq += (release.prefix(horizon - 1) - truth).powi(2);
        }
        let measured = sq / trials as f64;
        // Naive per-step noise at the same per-release budget would give
        // variance 2T/ε² = 4096; the tree must be well below half that.
        let naive = 2.0 * horizon as f64 / (0.5f64 * 0.5);
        assert!(
            measured < naive / 2.0,
            "measured {measured} vs naive accumulation {naive}"
        );
    }

    #[test]
    fn counter_is_unbiased() {
        let stream: Vec<u64> = (0..32).map(|i| (i % 5) as u64).collect();
        let counter = ContinualCounter::new(eps(1.0), 32);
        let truth = true_prefixes(&stream);
        let mut rng = rng_from_seed(3);
        let trials = 2000;
        let mut acc = vec![0.0; 32];
        for _ in 0..trials {
            let release = counter.process(&stream, &mut rng);
            for (a, t) in acc.iter_mut().zip(0..32) {
                *a += release.prefix(t);
            }
        }
        for (t, (a, want)) in acc.iter().zip(&truth).enumerate() {
            let mean = a / trials as f64;
            assert!((mean - want).abs() < 2.0, "t = {t}: mean {mean} vs {want}");
        }
    }

    #[test]
    fn monotonization_never_hurts_and_is_monotone() {
        let stream: Vec<u64> = (0..128).map(|i| ((i * 7) % 4) as u64).collect();
        let truth = true_prefixes(&stream);
        let counter = ContinualCounter::new(eps(0.2), 128);
        let mut rng = rng_from_seed(4);
        for _ in 0..50 {
            let release = counter.process(&stream, &mut rng);
            let raw = release.prefix_series();
            let mono = release.monotonized();
            assert!(mono.windows(2).all(|w| w[0] <= w[1] + 1e-9));
            assert!(sum_squared_error(&mono, &truth) <= sum_squared_error(&raw, &truth) + 1e-9);
        }
    }

    #[test]
    fn monotonization_helps_on_flat_streams() {
        // A quiet stream has a nearly constant prefix series — the best case
        // for the isotonic step, mirroring Theorem 2's d ≪ n regime.
        let stream = vec![0u64; 256];
        let truth = vec![0.0; 256];
        let counter = ContinualCounter::new(eps(0.2), 256);
        let mut rng = rng_from_seed(5);
        let trials = 60;
        let (mut raw_err, mut mono_err) = (0.0, 0.0);
        for _ in 0..trials {
            let release = counter.process(&stream, &mut rng);
            raw_err += sum_squared_error(&release.prefix_series(), &truth);
            mono_err += sum_squared_error(&release.monotonized(), &truth);
        }
        assert!(
            mono_err * 2.0 < raw_err,
            "monotonization gain too small: {mono_err} vs {raw_err}"
        );
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn prefix_beyond_horizon_panics() {
        let counter = ContinualCounter::new(eps(1.0), 8);
        let mut rng = rng_from_seed(6);
        let release = counter.process(&[1; 8], &mut rng);
        let _ = release.prefix(8);
    }
}
