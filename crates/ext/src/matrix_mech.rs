//! The matrix-mechanism view of query strategies (Li, Hay, Rastogi, Miklau,
//! McGregor, PODS 2010), cited in the paper's related work as the framework
//! that unifies `H` and the wavelet strategy.
//!
//! A *strategy* is a matrix `A` whose rows are the counting queries actually
//! released (with Laplace noise scaled to `Δ_A = ‖A‖₁`); a *workload* `W`
//! holds the queries the analyst wants. The least-squares estimate of the
//! cell counts is `x̂ = (AᵀA)⁻¹Aᵀ ỹ`, and the total expected squared error of
//! answering `W` is the closed form
//!
//! ```text
//! err(W, A) = (2 Δ_A² / ε²) · trace(W (AᵀA)⁻¹ Wᵀ)
//! ```
//!
//! This module computes that exactly with `hc-linalg`, for the identity (L),
//! hierarchical (H_k), and Haar-wavelet strategies, so the ablation bench can
//! compare strategies *analytically* (no sampling noise) against the
//! empirical results elsewhere in the repository.

use hc_linalg::{cholesky, LinalgError, Matrix};
use hc_mech::TreeShape;

/// The identity strategy (the paper's `L`): each unit count once.
pub fn strategy_identity(n: usize) -> Matrix {
    Matrix::identity(n)
}

/// The hierarchical strategy `H_k` over `n` leaves: one row per tree node,
/// row `v` indicating the leaves under `v`. `n` must be a power of `k`
/// (callers pad domains first, matching `hc-mech`'s convention).
pub fn strategy_hierarchical(n: usize, branching: usize) -> Matrix {
    let shape = TreeShape::for_domain(n, branching);
    assert_eq!(
        shape.leaves(),
        n,
        "n must be a power of the branching factor"
    );
    Matrix::from_fn(shape.nodes(), n, |v, leaf| {
        if shape.leaf_span(v).contains(leaf) {
            1.0
        } else {
            0.0
        }
    })
}

/// The (unnormalized) Haar strategy over `n = 2^m` cells: the total plus one
/// left-minus-right difference row per internal node of the binary tree.
pub fn strategy_wavelet(n: usize) -> Matrix {
    let shape = TreeShape::for_domain(n, 2);
    assert_eq!(shape.leaves(), n, "n must be a power of two");
    let internal = shape.leaf_node(0);
    Matrix::from_fn(internal + 1, n, |row, leaf| {
        if row == 0 {
            return 1.0; // total count
        }
        let v = row - 1;
        let mut children = shape.children(v);
        let left = children.next().expect("internal node");
        let right = children.next().expect("binary tree");
        if shape.leaf_span(left).contains(leaf) {
            1.0
        } else if shape.leaf_span(right).contains(leaf) {
            -1.0
        } else {
            0.0
        }
    })
}

/// The all-ranges workload: one row per interval `[i, j]`, `i ≤ j`.
pub fn workload_all_ranges(n: usize) -> Matrix {
    let rows = n * (n + 1) / 2;
    let mut w = Matrix::zeros(rows, n);
    let mut r = 0;
    for i in 0..n {
        for j in i..n {
            for c in i..=j {
                w[(r, c)] = 1.0;
            }
            r += 1;
        }
    }
    w
}

/// Exact expected total squared error of answering `workload` via the
/// least-squares estimator over `strategy`'s noisy answers at privacy `ε`.
///
/// # Errors
///
/// Propagates [`LinalgError`] if the strategy is column-rank deficient (its
/// Gram matrix is then singular) or shapes mismatch.
pub fn expected_error(
    workload: &Matrix,
    strategy: &Matrix,
    epsilon: f64,
) -> Result<f64, LinalgError> {
    if workload.cols() != strategy.cols() {
        return Err(LinalgError::ShapeMismatch {
            context: "workload and strategy must share the cell domain",
        });
    }
    let delta = strategy.norm_l1();
    let gram = strategy.gram();
    let factor = cholesky(&gram)?;

    // trace(W G⁻¹ Wᵀ) = Σ_rows wᵀ G⁻¹ w.
    let mut trace = 0.0;
    for r in 0..workload.rows() {
        let w_row = workload.row(r);
        let solved = factor.solve(w_row)?;
        trace += w_row.iter().zip(&solved).map(|(a, b)| a * b).sum::<f64>();
    }
    Ok(2.0 * delta * delta / (epsilon * epsilon) * trace)
}

/// The Gram matrix `WᵀW` of the all-ranges workload, in closed form:
/// entry `(a, b)` counts the ranges containing both cells —
/// `(min(a,b)+1) · (n − max(a,b))`. Lets [`expected_error_via_gram`] scale
/// to domains where materializing all `n(n+1)/2` workload rows is wasteful.
pub fn workload_all_ranges_gram(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |a, b| ((a.min(b) + 1) * (n - a.max(b))) as f64)
}

/// Like [`expected_error`], but takes the workload's Gram matrix `WᵀW`
/// (`trace(W G⁻¹ Wᵀ) = trace(G⁻¹ · WᵀW)`), avoiding the per-row solve over
/// huge workloads.
pub fn expected_error_via_gram(
    workload_gram: &Matrix,
    strategy: &Matrix,
    epsilon: f64,
) -> Result<f64, LinalgError> {
    if workload_gram.cols() != strategy.cols() || workload_gram.rows() != strategy.cols() {
        return Err(LinalgError::ShapeMismatch {
            context: "workload gram must be square over the cell domain",
        });
    }
    let delta = strategy.norm_l1();
    let gram = strategy.gram();
    let factor = cholesky(&gram)?;

    // trace(G⁻¹ M) = Σ_j (G⁻¹ m_j)[j] where m_j is M's j-th column.
    let n = workload_gram.cols();
    let mut trace = 0.0;
    let mut column = vec![0.0; n];
    for j in 0..n {
        for (i, slot) in column.iter_mut().enumerate() {
            *slot = workload_gram[(i, j)];
        }
        let solved = factor.solve(&column)?;
        trace += solved[j];
    }
    Ok(2.0 * delta * delta / (epsilon * epsilon) * trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_error_matches_closed_form() {
        // For A = I: G⁻¹ = I, so err = (2/ε²)·Σ_ranges len.
        let n = 8;
        let w = workload_all_ranges(n);
        let total_len: f64 = (1..=n).map(|len| (len * (n - len + 1)) as f64).sum();
        let got = expected_error(&w, &strategy_identity(n), 1.0).unwrap();
        assert!((got - 2.0 * total_len).abs() < 1e-9, "{got}");
    }

    #[test]
    fn strategy_sensitivities() {
        assert_eq!(strategy_identity(8).norm_l1(), 1.0);
        assert_eq!(strategy_hierarchical(8, 2).norm_l1(), 4.0); // ℓ = 4
        assert_eq!(strategy_wavelet(8).norm_l1(), 4.0); // total + 3 levels
    }

    #[test]
    fn error_is_invariant_to_strategy_scaling() {
        // Scaling A by c scales Δ² by c² and (AᵀA)⁻¹ by 1/c²: error unchanged.
        let w = workload_all_ranges(4);
        let a = strategy_hierarchical(4, 2);
        let scaled = Matrix::from_fn(a.rows(), a.cols(), |i, j| 3.0 * a[(i, j)]);
        let e1 = expected_error(&w, &a, 1.0).unwrap();
        let e2 = expected_error(&w, &scaled, 1.0).unwrap();
        assert!((e1 - e2).abs() < 1e-6 * e1);
    }

    #[test]
    fn wavelet_error_equals_binary_hierarchical() {
        // Li et al.: the Haar strategy and binary H have equal least-squares
        // error profiles. Verified exactly on the all-ranges workload.
        for n in [4usize, 8, 16] {
            let w = workload_all_ranges(n);
            let e_h = expected_error(&w, &strategy_hierarchical(n, 2), 1.0).unwrap();
            let e_w = expected_error(&w, &strategy_wavelet(n), 1.0).unwrap();
            let ratio = e_w / e_h;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "n = {n}: wavelet {e_w} vs H {e_h} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn tree_strategy_gap_narrows_with_domain_size() {
        // The Fig. 6 crossover, analytically: identity wins total all-ranges
        // error at small n (low sensitivity), but its disadvantage shrinks as
        // n grows — the ratio H/I must fall monotonically toward the
        // crossover (which `ablation_matrix` locates at paper scale).
        // (At n = 8 → 16 the ratio briefly rises as ℓ grows faster than the
        // averaging kicks in; from 16 on the decline is monotone.)
        let mut ratios = Vec::new();
        for n in [16usize, 32, 64, 128] {
            let wg = workload_all_ranges_gram(n);
            let e_i = expected_error_via_gram(&wg, &strategy_identity(n), 1.0).unwrap();
            let e_h = expected_error_via_gram(&wg, &strategy_hierarchical(n, 2), 1.0).unwrap();
            ratios.push(e_h / e_i);
        }
        assert!(
            ratios.windows(2).all(|w| w[1] < w[0]),
            "H/I ratio not shrinking: {ratios:?}"
        );
    }

    #[test]
    fn gram_path_matches_row_path() {
        let n = 16;
        let w = workload_all_ranges(n);
        let wg = workload_all_ranges_gram(n);
        // Cross-validate the closed-form WᵀW first.
        let explicit = w.gram();
        assert!(wg.max_abs_diff(&explicit) < 1e-9);
        for strategy in [strategy_identity(n), strategy_hierarchical(n, 2)] {
            let a = expected_error(&w, &strategy, 0.5).unwrap();
            let b = expected_error_via_gram(&wg, &strategy, 0.5).unwrap();
            assert!((a - b).abs() < 1e-6 * a.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn identity_beats_hierarchical_for_tiny_domains() {
        let n = 2;
        let w = workload_all_ranges(n);
        let e_i = expected_error(&w, &strategy_identity(n), 1.0).unwrap();
        let e_h = expected_error(&w, &strategy_hierarchical(n, 2), 1.0).unwrap();
        assert!(e_i < e_h, "I {e_i} vs H {e_h}");
    }

    #[test]
    fn epsilon_scales_quadratically() {
        let w = workload_all_ranges(4);
        let a = strategy_hierarchical(4, 2);
        let e1 = expected_error(&w, &a, 1.0).unwrap();
        let e01 = expected_error(&w, &a, 0.1).unwrap();
        assert!((e01 / e1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rank_deficient_strategy_is_rejected() {
        // A strategy that never observes cell 0 cannot support estimation.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 0.0, 1.0]);
        let w = workload_all_ranges(2);
        assert!(expected_error(&w, &a, 1.0).is_err());
    }
}
