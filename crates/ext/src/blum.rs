//! A Blum–Ligett–Roth-style equi-depth histogram baseline (Appendix E).
//!
//! Appendix E compares `H̃` against the "binary search equi-depth histogram"
//! of Blum et al. (STOC 2008) analytically: both are poly-logarithmic in the
//! domain size, but the BLR approach's absolute error grows as `O(N^(2/3))`
//! with the number of records `N`, while `H̃`'s is independent of `N`. The
//! original is closed-source (and exponential-mechanism-based); this module
//! implements the same *structure* — recursive noisy-median splitting into
//! equi-depth buckets, answering ranges by intra-bucket uniform
//! interpolation — which reproduces the `N`-scaling behaviour the appendix
//! is about (see DESIGN.md §3).
//!
//! Privacy accounting is explicit: every noisy probe of the data spends a
//! share of ε under sequential composition, and the release records its
//! ledger.

use hc_data::{Histogram, Interval};
use hc_mech::Epsilon;
use hc_noise::Laplace;
use rand::Rng;

/// Configuration for the equi-depth baseline.
#[derive(Debug, Clone, Copy)]
pub struct BlumEquiDepth {
    epsilon: Epsilon,
    /// Number of buckets; `None` selects BLR's error-optimal `Θ(N^(1/3))`.
    buckets: Option<usize>,
}

impl BlumEquiDepth {
    /// A baseline calibrated to `epsilon` with automatic bucket count.
    pub fn new(epsilon: Epsilon) -> Self {
        Self {
            epsilon,
            buckets: None,
        }
    }

    /// Overrides the bucket count (must be ≥ 1).
    pub fn with_buckets(epsilon: Epsilon, buckets: usize) -> Self {
        assert!(buckets >= 1, "need at least one bucket");
        Self {
            epsilon,
            buckets: Some(buckets),
        }
    }

    /// The bucket count used for a database of `n_records`.
    pub fn bucket_count(&self, n_records: u64) -> usize {
        self.buckets
            // hc-lint: allow(frozen-bits) — feeds an integer bucket count through round(); sub-ulp libm variance cannot move it
            .unwrap_or_else(|| ((n_records as f64).powf(1.0 / 3.0).round() as usize).max(4))
    }

    /// Releases an equi-depth histogram.
    ///
    /// Budget split: ε/2 across all noisy-median probes (sequential
    /// composition over `boundaries × log₂ n` prefix counts), ε/2 for the
    /// final bucket counts (a disjoint counting vector of sensitivity 1).
    pub fn release<R: Rng + ?Sized>(&self, histogram: &Histogram, rng: &mut R) -> EquiDepthRelease {
        let n = histogram.len();
        let total = histogram.total();
        let buckets = self.bucket_count(total).min(n).max(1);

        // True prefix sums — private; only probed through noise below.
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0u64);
        for (i, &c) in histogram.counts().iter().enumerate() {
            prefix.push(prefix[i] + c);
        }

        let boundaries_needed = buckets.saturating_sub(1);
        let probes_per_boundary = (n as f64).log2().ceil().max(1.0) as usize; // hc-lint: allow(frozen-bits) — integer probe count via ceil(); sub-ulp variance cannot move it off the power-of-two sizes used
        let total_probes = (boundaries_needed * probes_per_boundary).max(1);
        let eps_probe = self.epsilon.value() / 2.0 / total_probes as f64;
        let eps_counts = self.epsilon.value() / 2.0;

        let probe_noise = Laplace::centered(1.0 / eps_probe).expect("positive scale");

        // Noisy binary search for each equi-depth boundary: the smallest
        // domain index whose noisy prefix count reaches the target rank.
        let mut cut_points = Vec::with_capacity(boundaries_needed + 2);
        cut_points.push(0usize);
        for b in 1..buckets {
            let target = (total as f64) * b as f64 / buckets as f64;
            let (mut lo, mut hi) = (0usize, n); // search over prefix index
            for _ in 0..probes_per_boundary {
                if lo >= hi {
                    break;
                }
                let mid = (lo + hi) / 2;
                let noisy_prefix = prefix[mid] as f64 + probe_noise.sample(rng);
                if noisy_prefix < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            cut_points.push(lo.min(n));
        }
        cut_points.push(n);
        cut_points.sort_unstable();
        cut_points.dedup();

        // Noisy counts of the (disjoint) buckets: sensitivity 1 overall.
        let count_noise = Laplace::centered(1.0 / eps_counts).expect("positive scale");
        let mut bucket_list = Vec::with_capacity(cut_points.len() - 1);
        for w in cut_points.windows(2) {
            let (start, end) = (w[0], w[1]);
            if start == end {
                continue;
            }
            let true_count = (prefix[end] - prefix[start]) as f64;
            bucket_list.push(BucketEstimate {
                start,
                end,
                count: (true_count + count_noise.sample(rng)).max(0.0),
            });
        }
        if bucket_list.is_empty() {
            // Degenerate: every cut collapsed; one bucket over everything.
            bucket_list.push(BucketEstimate {
                start: 0,
                end: n,
                count: (total as f64 + count_noise.sample(rng)).max(0.0),
            });
        }

        EquiDepthRelease {
            epsilon: self.epsilon,
            domain_size: n,
            buckets: bucket_list,
            probe_epsilon_spent: eps_probe * total_probes as f64,
            count_epsilon_spent: eps_counts,
        }
    }
}

/// One released bucket: the half-open domain slice `[start, end)` and its
/// noisy record count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketEstimate {
    /// First domain index of the bucket.
    pub start: usize,
    /// One past the last domain index.
    pub end: usize,
    /// Noisy (clamped non-negative) record count.
    pub count: f64,
}

impl BucketEstimate {
    /// Number of domain bins covered.
    pub fn width(&self) -> usize {
        self.end - self.start
    }
}

/// A released equi-depth histogram.
#[derive(Debug, Clone)]
pub struct EquiDepthRelease {
    epsilon: Epsilon,
    domain_size: usize,
    buckets: Vec<BucketEstimate>,
    probe_epsilon_spent: f64,
    count_epsilon_spent: f64,
}

impl EquiDepthRelease {
    /// The ε the release was calibrated to.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The released buckets (sorted, disjoint, covering the domain).
    pub fn buckets(&self) -> &[BucketEstimate] {
        &self.buckets
    }

    /// Total ε consumed: probes + counts. Must equal the configured ε.
    pub fn epsilon_spent(&self) -> f64 {
        self.probe_epsilon_spent + self.count_epsilon_spent
    }

    /// Answers `c([lo, hi])` assuming uniformity within buckets — full
    /// buckets contribute their count, partial overlaps contribute
    /// proportionally to the overlap width.
    pub fn range_query(&self, interval: Interval) -> f64 {
        assert!(
            interval.hi() < self.domain_size,
            "query {interval} outside domain of size {}",
            self.domain_size
        );
        let mut acc = 0.0;
        for b in &self.buckets {
            if b.start > interval.hi() || b.end <= interval.lo() {
                continue;
            }
            let overlap_lo = interval.lo().max(b.start);
            let overlap_hi = (interval.hi() + 1).min(b.end);
            let overlap = (overlap_hi - overlap_lo) as f64;
            acc += b.count * overlap / b.width() as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::Domain;
    use hc_noise::rng_from_seed;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn uniform_histogram(n: usize, per_bin: u64) -> Histogram {
        Histogram::from_counts(Domain::new("x", n).unwrap(), vec![per_bin; n])
    }

    #[test]
    fn buckets_partition_domain() {
        let h = uniform_histogram(256, 4);
        let mut rng = rng_from_seed(121);
        let rel = BlumEquiDepth::new(eps(1.0)).release(&h, &mut rng);
        let bs = rel.buckets();
        assert_eq!(bs.first().unwrap().start, 0);
        assert_eq!(bs.last().unwrap().end, 256);
        for w in bs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "buckets must tile the domain");
        }
    }

    #[test]
    fn default_bucket_count_is_cube_root() {
        let b = BlumEquiDepth::new(eps(1.0));
        assert_eq!(b.bucket_count(1_000), 10);
        assert_eq!(b.bucket_count(1_000_000), 100);
        assert_eq!(b.bucket_count(8), 4); // floor at 4
    }

    #[test]
    fn epsilon_accounting_is_exact() {
        let h = uniform_histogram(128, 2);
        let mut rng = rng_from_seed(122);
        let rel = BlumEquiDepth::new(eps(0.7)).release(&h, &mut rng);
        assert!((rel.epsilon_spent() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn high_budget_boundaries_are_near_true_quantiles() {
        // With ε enormous, noise vanishes: buckets should hold ≈ equal mass.
        let h = uniform_histogram(1024, 8);
        let mut rng = rng_from_seed(123);
        let rel = BlumEquiDepth::with_buckets(eps(1e6), 8).release(&h, &mut rng);
        for b in rel.buckets() {
            let mass = b.count;
            assert!(
                (mass - 1024.0).abs() < 64.0,
                "bucket [{}, {}) holds {mass}",
                b.start,
                b.end
            );
        }
    }

    #[test]
    fn range_queries_are_accurate_on_uniform_data() {
        let h = uniform_histogram(512, 10);
        let mut rng = rng_from_seed(124);
        let rel = BlumEquiDepth::new(eps(100.0)).release(&h, &mut rng);
        for (lo, hi) in [(0usize, 511usize), (100, 200), (37, 38)] {
            let truth = h.range_count(Interval::new(lo, hi)) as f64;
            let got = rel.range_query(Interval::new(lo, hi));
            let tolerance = truth.max(20.0) * 0.2;
            assert!(
                (got - truth).abs() < tolerance,
                "[{lo},{hi}]: {got} vs {truth}"
            );
        }
    }

    #[test]
    fn interpolation_error_grows_with_database_size() {
        // The Appendix E claim, at fixed domain and ε: scaling all counts up
        // scales within-bucket interpolation error superlinearly in absolute
        // terms relative to H̃ (which is N-independent). Use skewed data so
        // uniformity is violated.
        let n = 256;
        let mut rng = rng_from_seed(125);
        let make = |scale: u64| {
            let counts: Vec<u64> = (0..n)
                .map(|i| if i % 16 == 0 { 64 * scale } else { 0 })
                .collect();
            Histogram::from_counts(Domain::new("x", n).unwrap(), counts)
        };
        let query = Interval::new(3, 10); // inside a mostly-empty stretch
        let mut errors = Vec::new();
        for scale in [1u64, 64] {
            let h = make(scale);
            let mut total = 0.0;
            for _ in 0..40 {
                let rel = BlumEquiDepth::new(eps(1.0)).release(&h, &mut rng);
                let truth = h.range_count(query) as f64;
                total += (rel.range_query(query) - truth).abs();
            }
            errors.push(total / 40.0);
        }
        assert!(
            errors[1] > 4.0 * errors[0].max(1.0),
            "expected error growth with N: {errors:?}"
        );
    }

    #[test]
    fn single_bucket_degenerate_case() {
        let h = uniform_histogram(16, 1);
        let mut rng = rng_from_seed(126);
        let rel = BlumEquiDepth::with_buckets(eps(1.0), 1).release(&h, &mut rng);
        assert_eq!(rel.buckets().len(), 1);
        let full = rel.range_query(Interval::new(0, 15));
        assert!(full >= 0.0);
    }
}
