//! Shared test assertions for the workspace.
//!
//! Every crate's test suite compares floating-point vectors against
//! references (closed forms vs generic solvers, engine vs oracle, snapshot
//! vectors). This dev-dependency crate holds the one canonical
//! [`assert_close`] so the helper is not re-declared per test module and
//! every suite reports mismatches the same way.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Asserts `a` and `b` have equal length and agree element-wise within
/// `tol` (absolute). Panics with the first offending position and both
/// values.
#[track_caller]
pub fn assert_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() < tol,
            "position {i}: {x} vs {y} (|Δ| = {:.3e}, tol = {tol:.3e})",
            (x - y).abs()
        );
    }
}

/// Asserts two scalars agree within `tol` (absolute).
#[track_caller]
pub fn assert_close_scalar(x: f64, y: f64, tol: f64) {
    assert!(
        (x - y).abs() < tol,
        "{x} vs {y} (|Δ| = {:.3e}, tol = {tol:.3e})",
        (x - y).abs()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_close_vectors() {
        assert_close(&[1.0, 2.0], &[1.0 + 1e-12, 2.0 - 1e-12], 1e-9);
        assert_close_scalar(3.0, 3.0 + 1e-10, 1e-9);
    }

    #[test]
    #[should_panic(expected = "position 1")]
    fn reports_the_offending_position() {
        assert_close(&[1.0, 2.0, 3.0], &[1.0, 2.5, 3.0], 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        assert_close(&[1.0], &[1.0, 2.0], 1e-9);
    }
}
