//! Conjugate gradient for symmetric positive definite operators.

use crate::LinalgError;

/// Options controlling [`conjugate_gradient`].
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Maximum iterations before giving up (defaults to `10 * n`).
    pub max_iterations: Option<usize>,
    /// Relative residual tolerance `‖r‖ / ‖b‖` (default `1e-10`).
    pub tolerance: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            max_iterations: None,
            tolerance: 1e-10,
        }
    }
}

/// Convergence report of a CG run.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖₂`.
    pub residual: f64,
}

/// Solves `A x = b` for an SPD operator given only `x ↦ A x`.
///
/// Used with [`crate::CsrMatrix::gram_operator`] to solve the normal
/// equations of the hierarchical inference problem on trees too large for a
/// dense factorization, providing a second independent check of Theorem 3.
///
/// # Errors
///
/// [`LinalgError::DidNotConverge`] if the residual tolerance isn't met within
/// the iteration budget.
pub fn conjugate_gradient(
    apply: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    opts: CgOptions,
) -> Result<CgOutcome, LinalgError> {
    let n = b.len();
    let max_iter = opts.max_iterations.unwrap_or(10 * n.max(1));
    let b_norm = norm(b);
    if b_norm == 0.0 {
        return Ok(CgOutcome {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);

    for iter in 0..max_iter {
        let ap = apply(&p);
        let denominator = dot(&p, &ap);
        if denominator <= 0.0 {
            // Operator not positive definite along p; surface as
            // non-convergence with the current residual.
            return Err(LinalgError::DidNotConverge {
                iterations: iter,
                residual: rs_old.sqrt(),
            });
        }
        let alpha = rs_old / denominator;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        if rs_new.sqrt() <= opts.tolerance * b_norm {
            return Ok(CgOutcome {
                x,
                iterations: iter + 1,
                residual: rs_new.sqrt(),
            });
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }

    Err(LinalgError::DidNotConverge {
        iterations: max_iter,
        residual: rs_old.sqrt(),
    })
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn solves_small_spd_system() {
        let a = Matrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0]);
        let out = conjugate_gradient(|x| a.matvec(x).unwrap(), &[1.0, 2.0], CgOptions::default())
            .unwrap();
        let direct = a.solve(&[1.0, 2.0]).unwrap();
        for (u, v) in out.x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let out =
            conjugate_gradient(|x| x.to_vec(), &[0.0, 0.0, 0.0], CgOptions::default()).unwrap();
        assert_eq!(out.x, vec![0.0; 3]);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn identity_converges_in_one_iteration() {
        let b = vec![3.0, -1.0, 2.0];
        let out = conjugate_gradient(|x| x.to_vec(), &b, CgOptions::default()).unwrap();
        assert_eq!(out.iterations, 1);
        for (u, v) in out.x.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_system_exact() {
        let d = [2.0, 5.0, 10.0];
        let b = [2.0, 10.0, 30.0];
        let out = conjugate_gradient(
            |x| x.iter().zip(&d).map(|(xi, di)| xi * di).collect(),
            &b,
            CgOptions::default(),
        )
        .unwrap();
        for (xi, want) in out.x.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((xi - want).abs() < 1e-9);
        }
    }

    #[test]
    fn iteration_budget_is_enforced() {
        // Indefinite operator (negates input) cannot be solved by CG.
        let res = conjugate_gradient(
            |x| x.iter().map(|v| -v).collect(),
            &[1.0, 1.0],
            CgOptions {
                max_iterations: Some(5),
                ..CgOptions::default()
            },
        );
        assert!(matches!(res, Err(LinalgError::DidNotConverge { .. })));
    }

    #[test]
    fn larger_laplacian_like_system() {
        // Tridiagonal SPD system (discrete Laplacian + identity).
        let n = 200;
        let apply = |x: &[f64]| {
            let mut out = vec![0.0; n];
            for i in 0..n {
                out[i] = 3.0 * x[i];
                if i > 0 {
                    out[i] -= x[i - 1];
                }
                if i + 1 < n {
                    out[i] -= x[i + 1];
                }
            }
            out
        };
        let b = vec![1.0; n];
        let out = conjugate_gradient(apply, &b, CgOptions::default()).unwrap();
        // Verify residual directly.
        let ax = apply(&out.x);
        let resid: f64 = ax
            .iter()
            .zip(&b)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(resid < 1e-7, "residual {resid}");
    }
}
