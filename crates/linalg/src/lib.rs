//! Small dense + sparse linear-algebra substrate.
//!
//! The paper's constrained-inference estimators have closed-form solutions
//! (Theorems 1 and 3), but both are characterized as least-squares problems:
//! isotonic regression and ordinary least squares over the tree aggregation
//! matrix. This crate provides an independent, generic solver stack so the
//! closed forms can be *verified* rather than trusted:
//!
//! * [`Matrix`] — dense row-major matrices with the usual operations.
//! * [`lu`] — LU decomposition with partial pivoting; [`Matrix::solve`] and
//!   [`Matrix::inverse`] build on it.
//! * [`cholesky`] — Cholesky factorization for the SPD normal equations.
//! * [`lstsq`] — ordinary least squares `min ‖Ax − b‖₂` via normal equations.
//! * [`CsrMatrix`] + [`conjugate_gradient`] — sparse path for medium-size
//!   verification where forming dense `AᵀA` is wasteful.
//!
//! It also powers the matrix-mechanism analysis in `hc-ext`, which computes
//! exact expected errors of query strategies (Li et al., PODS 2010 view).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

mod cg;
mod chol;
mod lstsq;
mod lu;
mod matrix;
mod sparse;

pub use cg::{conjugate_gradient, CgOptions, CgOutcome};
pub use chol::cholesky;
pub use lstsq::{lstsq, lstsq_weighted};
pub use lu::{lu, LuDecomposition};
pub use matrix::Matrix;
pub use sparse::CsrMatrix;

/// Errors produced by decompositions and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Dimensions of the operands are incompatible.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
    /// The matrix is singular (or numerically so) at the given pivot.
    Singular {
        /// Pivot index where elimination failed.
        pivot: usize,
    },
    /// The matrix is not positive definite (Cholesky failed at `pivot`).
    NotPositiveDefinite {
        /// Row index where factorization failed.
        pivot: usize,
    },
    /// An iterative solver did not converge within its iteration budget.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
}

impl core::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            LinalgError::Singular { pivot } => write!(f, "singular matrix at pivot {pivot}"),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at row {pivot}")
            }
            LinalgError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:e})"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}
