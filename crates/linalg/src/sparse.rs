//! Compressed sparse row matrices.

use crate::{LinalgError, Matrix};

/// A sparse matrix in CSR (compressed sparse row) form.
///
/// The hierarchical aggregation matrix of the paper's `H` query has only
/// `n · ℓ` nonzeros for `m ≈ 2n` rows, so the verification path for
/// medium-size trees uses this representation with conjugate gradient rather
/// than a dense Gram matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may be in any order; duplicates are summed. Entries out of
    /// bounds panic (construction bug, not a runtime condition).
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut entries: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &entries {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            if let (Some(&last_c), Some(last_v)) = (col_idx.last(), values.last_mut()) {
                if row_ptr[r + 1] > 0 && last_c == c && col_idx.len() > row_ptr[r] {
                    // Same row (we're still filling row r) and same column:
                    // merge duplicate.
                    *last_v += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] = col_idx.len();
        }
        // Rows with no entries inherit the previous pointer.
        for r in 1..=rows {
            if row_ptr[r] < row_ptr[r - 1] {
                row_ptr[r] = row_ptr[r - 1];
            }
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Sparse matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                context: "CSR matvec dimensions",
            });
        }
        let mut out = vec![0.0; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            *slot = self.col_idx[span.clone()]
                .iter()
                .zip(&self.values[span])
                .map(|(&c, &v)| v * x[c])
                .sum();
        }
        Ok(out)
    }

    /// Transposed product `Aᵀ x`.
    pub fn transpose_matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                context: "CSR transpose_matvec dimensions",
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            for (&c, &v) in self.col_idx[span.clone()].iter().zip(&self.values[span]) {
                out[c] += v * xr;
            }
        }
        Ok(out)
    }

    /// The Gram operator `x ↦ Aᵀ(Ax)` as a closure, for iterative solvers.
    pub fn gram_operator(&self) -> impl Fn(&[f64]) -> Vec<f64> + '_ {
        move |x| {
            let ax = self.matvec(x).expect("dimension checked by caller");
            self.transpose_matvec(&ax).expect("dimension consistent")
        }
    }

    /// Densifies (for tests and small problems).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            for (&c, &v) in self.col_idx[span.clone()].iter().zip(&self.values[span]) {
                m[(r, c)] += v;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (2, 1, 4.0), (0, 2, 2.0), (2, 0, 3.0)],
        )
    }

    #[test]
    fn construction_sorts_and_counts() {
        let m = example();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = example();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x).unwrap(), m.to_dense().matvec(&x).unwrap());
    }

    #[test]
    fn transpose_matvec_matches_dense() {
        let m = example();
        let x = [1.0, -1.0, 0.5];
        let dense = m.to_dense().transpose_matvec(&x).unwrap();
        let sparse = m.transpose_matvec(&x).unwrap();
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, vec![(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.to_dense()[(0, 0)], 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = example();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]).unwrap()[1], 0.0);
    }

    #[test]
    fn gram_operator_equals_dense_gram() {
        let m = example();
        let x = [0.3, -1.2, 2.0];
        let via_op = m.gram_operator()(&x);
        let via_dense = m.to_dense().gram().matvec(&x).unwrap();
        for (a, b) in via_op.iter().zip(&via_dense) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_triplet_panics() {
        let _ = CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }
}
