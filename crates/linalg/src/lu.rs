//! LU decomposition with partial pivoting.

// Triangular factorization/substitution kernels read clearest with explicit
// index arithmetic; iterator rewrites obscure the dependence structure.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix};

/// A packed LU decomposition `P·A = L·U` of a square matrix.
///
/// `L` (unit lower) and `U` (upper) share the `factors` storage; `perm` maps
/// output row → input row of `A`.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    factors: Matrix,
    perm: Vec<usize>,
    /// Number of row swaps performed (parity of the permutation).
    swaps: usize,
}

const PIVOT_EPS: f64 = 1e-12;

/// Factorizes a square matrix.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `a` is not square.
/// * [`LinalgError::Singular`] if no usable pivot exists in some column.
pub fn lu(a: &Matrix) -> Result<LuDecomposition, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::ShapeMismatch {
            context: "LU of non-square matrix",
        });
    }
    let n = a.rows();
    let mut f = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut swaps = 0usize;

    for col in 0..n {
        // Partial pivoting: the largest magnitude in the column at/below the
        // diagonal.
        let (pivot_row, pivot_val) =
            (col..n)
                .map(|r| (r, f[(r, col)].abs()))
                .fold(
                    (col, -1.0),
                    |best, cur| if cur.1 > best.1 { cur } else { best },
                );
        if pivot_val < PIVOT_EPS {
            return Err(LinalgError::Singular { pivot: col });
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = f[(col, j)];
                f[(col, j)] = f[(pivot_row, j)];
                f[(pivot_row, j)] = tmp;
            }
            perm.swap(col, pivot_row);
            swaps += 1;
        }
        let pivot = f[(col, col)];
        for r in (col + 1)..n {
            let m = f[(r, col)] / pivot;
            f[(r, col)] = m;
            for j in (col + 1)..n {
                let delta = m * f[(col, j)];
                f[(r, j)] -= delta;
            }
        }
    }

    Ok(LuDecomposition {
        factors: f,
        perm,
        swaps,
    })
}

impl LuDecomposition {
    /// Solves `A x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.factors.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: "LU solve right-hand side length",
            });
        }
        // Forward substitution on the permuted RHS (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.factors[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution with U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.factors[(i, j)] * x[j];
            }
            x[i] = acc / self.factors[(i, i)];
        }
        Ok(x)
    }

    /// The determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let sign = if self.swaps % 2 == 0 { 1.0 } else { -1.0 };
        sign * (0..self.factors.rows())
            .map(|i| self.factors[(i, i)])
            .product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = lu(&a).unwrap().solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = lu(&a).unwrap().solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(lu(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(lu(&a), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn determinant_with_and_without_swaps() {
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        assert!((lu(&a).unwrap().det() - 5.0).abs() < 1e-12);
        let b = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert!((lu(&b).unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_solve_residual_is_tiny() {
        // Deterministic pseudo-random fill (no rand dependency in this crate).
        let n = 20;
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 2.0 } else { 0.0 });
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        let resid: f64 = r
            .iter()
            .zip(&b)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(resid < 1e-9, "residual {resid}");
    }
}
