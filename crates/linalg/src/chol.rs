//! Cholesky factorization for symmetric positive definite systems.

// Triangular factorization/substitution kernels read clearest with explicit
// index arithmetic; iterator rewrites obscure the dependence structure.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix};

/// The lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

/// Factorizes a symmetric positive definite matrix.
///
/// Only the lower triangle of `a` is read, so callers may pass a matrix whose
/// upper triangle is garbage (useful when assembling Gram matrices).
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `a` is not square.
/// * [`LinalgError::NotPositiveDefinite`] if a non-positive pivot appears.
pub fn cholesky(a: &Matrix) -> Result<Cholesky, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::ShapeMismatch {
            context: "Cholesky of non-square matrix",
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut acc = a[(i, j)];
            for k in 0..j {
                acc -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if acc <= 0.0 || !acc.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = acc.sqrt();
            } else {
                l[(i, j)] = acc / l[(j, j)];
            }
        }
    }
    Ok(Cholesky { l })
}

impl Cholesky {
    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` by forward/back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: "Cholesky solve right-hand side length",
            });
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (twice the log of the product of pivots).
    pub fn log_det(&self) -> f64 {
        2.0 * (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_known_spd_matrix() {
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let c = cholesky(&a).unwrap();
        let l = c.factor();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn solve_agrees_with_lu() {
        let a = Matrix::from_rows(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]);
        let b = [1.0, -2.0, 3.0];
        let x1 = cholesky(&a).unwrap().solve(&b).unwrap();
        let x2 = a.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(cholesky(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let ld = cholesky(&a).unwrap().log_det();
        let det = crate::lu(&a).unwrap().det();
        assert!((ld - det.ln()).abs() < 1e-12);
    }
}
