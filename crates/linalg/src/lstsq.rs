//! Ordinary (and weighted) least squares via normal equations.

use crate::{cholesky, LinalgError, Matrix};

/// Solves `min_x ‖A x − b‖₂` for a full-column-rank `A`.
///
/// Forms the normal equations `AᵀA x = Aᵀ b` and factors the Gram matrix with
/// Cholesky. This is exactly the estimator Theorem 3 of the paper
/// characterizes in closed form when `A` is the hierarchical aggregation
/// matrix; the integration tests use this generic path to validate the
/// closed form.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `b.len() != A.rows()`.
/// * [`LinalgError::NotPositiveDefinite`] if `A` is column-rank deficient.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            context: "lstsq right-hand side length",
        });
    }
    let gram = a.gram();
    let rhs = a.transpose_matvec(b)?;
    cholesky(&gram)?.solve(&rhs)
}

/// Weighted least squares `min_x ‖W^{1/2}(A x − b)‖₂` with per-row weights.
///
/// Weights must be positive. Used to validate the inference step when noise
/// scales differ across queries (e.g. mixed-sensitivity strategies in the
/// matrix-mechanism ablation).
pub fn lstsq_weighted(a: &Matrix, b: &[f64], weights: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() || weights.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            context: "lstsq_weighted operand lengths",
        });
    }
    // Form AᵀWA and AᵀWb directly.
    let n = a.cols();
    let mut gram = Matrix::zeros(n, n);
    let mut rhs = vec![0.0; n];
    for i in 0..a.rows() {
        let w = weights[i];
        let row = a.row(i);
        for (j, &aj) in row.iter().enumerate() {
            if aj == 0.0 {
                continue;
            }
            let waj = w * aj;
            rhs[j] += waj * b[i];
            for (k, &ak) in row.iter().enumerate().skip(j) {
                gram[(j, k)] += waj * ak;
            }
        }
    }
    for j in 0..n {
        for k in (j + 1)..n {
            gram[(k, j)] = gram[(j, k)];
        }
    }
    cholesky(&gram)?.solve(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_system_recovers_solution() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let x_true = [2.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn simple_regression_line() {
        // Fit y = c0 + c1 t through (0,1), (1,3), (2,5): exact line 1 + 2t.
        let a = Matrix::from_rows(3, 2, vec![1.0, 0.0, 1.0, 1.0, 1.0, 2.0]);
        let x = lstsq(&a, &[1.0, 3.0, 5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_minimizes_residual() {
        // Average of observations is the L2-best constant fit.
        let a = Matrix::from_rows(4, 1, vec![1.0, 1.0, 1.0, 1.0]);
        let x = lstsq(&a, &[1.0, 2.0, 3.0, 6.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_orthogonal_to_column_space() {
        let a = Matrix::from_rows(4, 2, vec![1.0, 2.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let b = [3.0, 1.0, -2.0, 0.5];
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(u, v)| u - v).collect();
        let atr = a.transpose_matvec(&r).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-10, "Aᵀr component {v}");
        }
    }

    #[test]
    fn rank_deficient_is_detected() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        assert!(lstsq(&a, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn unit_weights_match_ols() {
        let a = Matrix::from_rows(4, 2, vec![1.0, 2.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let b = [3.0, 1.0, -2.0, 0.5];
        let x1 = lstsq(&a, &b).unwrap();
        let x2 = lstsq_weighted(&a, &b, &[1.0; 4]).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_weight_limit_ignores_row() {
        // Heavily down-weighting an outlier should approach the fit without it.
        let a = Matrix::from_rows(3, 1, vec![1.0, 1.0, 1.0]);
        let b = [1.0, 1.0, 100.0];
        let x = lstsq_weighted(&a, &b, &[1.0, 1.0, 1e-12]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6, "x = {}", x[0]);
    }
}
