//! Dense row-major matrices.

use crate::LinalgError;

/// A dense `rows × cols` matrix of `f64`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row-major data. Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// A single row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                context: "matmul inner dimensions",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both operands.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                context: "matvec dimensions",
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// `Aᵀ x` without materializing the transpose.
    pub fn transpose_matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != x.len() {
            return Err(LinalgError::ShapeMismatch {
                context: "transpose_matvec dimensions",
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += a * xi;
            }
        }
        Ok(out)
    }

    /// The Gram matrix `Aᵀ A` (symmetric positive semidefinite).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &aj) in row.iter().enumerate() {
                if aj == 0.0 {
                    continue;
                }
                for (k, &ak) in row.iter().enumerate().skip(j) {
                    out[(j, k)] += aj * ak;
                }
            }
        }
        // Mirror the upper triangle.
        for j in 0..self.cols {
            for k in (j + 1)..self.cols {
                out[(k, j)] = out[(j, k)];
            }
        }
        out
    }

    /// Solves `self * x = b` via LU with partial pivoting.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        crate::lu(self)?.solve(b)
    }

    /// The inverse, via LU solves against the identity.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch {
                context: "inverse of non-square matrix",
            });
        }
        let n = self.rows;
        let decomp = crate::lu(self)?;
        let mut out = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = decomp.solve(&e)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(out)
    }

    /// Trace (sum of diagonal entries) of a square matrix.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Maximum absolute column sum — the operator 1-norm `‖A‖₁`.
    ///
    /// For a 0/1 query strategy matrix this equals its L1 sensitivity, the
    /// quantity the Laplace mechanism calibrates to.
    pub fn norm_l1(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Elementwise maximum absolute difference to `other`. Panics on shape
    /// mismatch (intended for tests).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn indexing_is_row_major() {
        let m = sample();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample(); // 2x3
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn matvec_and_transpose_matvec_agree_with_matmul() {
        let a = sample();
        let x = vec![1.0, -1.0, 2.0];
        assert_eq!(a.matvec(&x).unwrap(), vec![5.0, 11.0]);
        let y = vec![1.0, 1.0];
        assert_eq!(a.transpose_matvec(&y).unwrap(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gram_equals_explicit_product() {
        let a = sample();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(a.gram().max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = sample();
        let i3 = Matrix::identity(3);
        assert!(a.matmul(&i3).unwrap().max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn inverse_of_known_matrix() {
        let m = Matrix::from_rows(2, 2, vec![4.0, 7.0, 2.0, 6.0]);
        let inv = m.inverse().unwrap();
        let expected = Matrix::from_rows(2, 2, vec![0.6, -0.7, -0.2, 0.4]);
        assert!(inv.max_abs_diff(&expected) < 1e-12);
        assert!(m.matmul(&inv).unwrap().max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn norms_and_trace() {
        let m = Matrix::from_rows(2, 2, vec![1.0, -2.0, 3.0, 4.0]);
        assert_eq!(m.trace(), 5.0);
        assert_eq!(m.norm_l1(), 6.0); // column 1: |−2| + |4| = 6
        assert!((m.norm_frobenius() - (30.0f64).sqrt()).abs() < 1e-12);
    }
}
