//! # hist-consistency
//!
//! A from-scratch Rust implementation of
//! **Hay, Rastogi, Miklau & Suciu, "Boosting the Accuracy of Differentially
//! Private Histograms Through Consistency" (VLDB 2010)**: constrained
//! inference that post-processes Laplace-mechanism releases onto their
//! consistency constraints, often reducing error by an order of magnitude at
//! zero privacy cost.
//!
//! Two histogram tasks are supported end to end:
//!
//! * **Unattributed histograms** (Sec. 3) — release the *sorted* counts, then
//!   project onto ordered sequences with linear-time isotonic regression
//!   (Theorem 1). Ideal for degree sequences and frequency distributions.
//! * **Universal histograms** (Sec. 4) — release a k-ary tree of interval
//!   counts, then project onto the parent-equals-sum-of-children polytope in
//!   two linear passes (Theorem 3); answer *arbitrary* range queries from the
//!   result, optimally among linear unbiased estimators (Theorem 4).
//!
//! ## Quickstart
//!
//! ```
//! use hist_consistency::prelude::*;
//!
//! // A private histogram: the paper's Fig. 2 example trace.
//! let domain = Domain::new("src", 4)?;
//! let histogram = Histogram::from_counts(domain, vec![2, 0, 10, 2]);
//! let mut rng = rng_from_seed(42);
//!
//! // Unattributed task: how many hosts have each connection count?
//! let task = UnattributedHistogram::new(Epsilon::new(1.0)?);
//! let release = task.release(&histogram, &mut rng); // ε-DP happens here
//! let degrees = release.inferred();                 // post-processing only
//! assert!(degrees.windows(2).all(|w| w[0] <= w[1])); // consistent: sorted
//!
//! // Universal task: answer any range count from one release.
//! let pipeline = HierarchicalUniversal::binary(Epsilon::new(1.0)?);
//! let tree = pipeline.release(&histogram, &mut rng).infer();
//! let all = tree.range_query(Interval::new(0, 3));
//! let left_half = tree.range_query(Interval::new(0, 1));
//! let right_half = tree.range_query(Interval::new(2, 3));
//! assert!((all - (left_half + right_half)).abs() < 1e-9); // consistent
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`noise`] | Laplace / geometric / Zipf / Poisson sampling, seed streams |
//! | [`linalg`] | dense + sparse linear algebra used to *verify* the closed forms |
//! | [`data`] | domains, relations, histograms, graphs, synthetic datasets |
//! | [`mech`] | ε budgets, the (ε, δ) [`mech::PrivacyAccountant`], query sequences `L`/`S`/`H`, sensitivity, Laplace mechanism |
//! | [`infer`] | **the paper's contribution**: isotonic + hierarchical inference, estimators, and the accuracy-first planner ([`infer::AccuracyTarget`] → ranked [`infer::StrategyPlan`]s) |
//! | [`serve`] | long-lived multi-tenant service: epoch-swapped snapshots, accountant-backed ledgers, accuracy-planned registration |
//! | [`ext`] | wavelet mechanism, Blum et al. baseline, 2-D quadtrees, graphical repair, matrix mechanism |
//!
//! Experiments reproducing every table and figure live in the `hc-bench`
//! crate (see `EXPERIMENTS.md`); runnable scenarios live in `examples/`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub use hc_core as infer;
pub use hc_data as data;
pub use hc_ext as ext;
pub use hc_linalg as linalg;
pub use hc_mech as mech;
pub use hc_noise as noise;
pub use hc_serve as serve;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use hc_core::{
        effective_threads, enforce_nonnegativity, hierarchical_inference, isotonic_regression,
        mean_absolute_error, sum_squared_error, weighted_hierarchical_inference, AccuracyTarget,
        BatchInference, BudgetSplit, BudgetedHierarchical, ConsistentSnapshot, ConsistentTree,
        FlatUniversal, Guarantee, HierarchicalUniversal, LevelTree, PlanInput, ReleaseStrategy,
        RoundedTree, Rounding, ShardPool, SortedRelease, StrategyPlan, StrategyPlanner,
        SubtreeServer, TreeRelease, UnattributedHistogram,
    };
    pub use hc_data::{Domain, Graph, Histogram, Interval, RangeWorkload, Relation};
    pub use hc_mech::{
        Epsilon, HierarchicalQuery, LaplaceMechanism, LedgerEntry, PreparedMechanism,
        PrivacyAccountant, PrivacyBudget, QuerySequence, SortedQuery, TreeShape, UnitQuery,
    };
    pub use hc_noise::{rng_from_seed, Laplace, NoiseBackend, SeedStream};
    pub use hc_serve::{HistogramService, RangeQuery, TenantConfig};
}

#[cfg(test)]
mod facade_tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_full_pipeline() {
        let domain = Domain::new("x", 8).unwrap();
        let histogram = Histogram::from_counts(domain, vec![1, 2, 3, 4, 0, 0, 0, 5]);
        let mut rng = rng_from_seed(1);
        let release =
            HierarchicalUniversal::binary(Epsilon::new(0.5).unwrap()).release(&histogram, &mut rng);
        let tree = release.infer();
        assert!(tree.max_consistency_violation() < 1e-9);
    }
}
