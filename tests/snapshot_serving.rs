//! The serving-layer trust harness: `ConsistentSnapshot` and
//! `SubtreeServer` pinned against the estimators they replaced.
//!
//! The contracts:
//!
//! * `ConsistentSnapshot::answer` ≡ `ConsistentTree::range_query` **bit for
//!   bit** over arbitrary shapes, node values, and ranges (same prefix
//!   construction, same two-lookup arithmetic);
//! * on exactly consistent integer trees (true counts), snapshot answers ≡
//!   the subtree-decomposition oracle bit for bit — integer prefix sums are
//!   exact, so O(1) serving and the decomposition walk cannot disagree;
//! * `SubtreeServer::answer` ≡ materializing
//!   `TreeShape::subtree_decomposition` and folding, bit for bit, for any
//!   values and rounding policy (the materialized decomposition stays as
//!   the oracle);
//! * batched and parallel snapshot serving ≡ one-at-a-time answers;
//! * fixed-seed golden pins for a served query batch **per noise backend**
//!   (`reference_*` / `fast_ln_*`, the `hc_noise::backend` versioning
//!   convention — CI runs each prefix as its own step).

use hist_consistency::data::RangeWorkload;
use hist_consistency::prelude::*;
use proptest::prelude::*;
use rand::Rng;

fn random_values(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rng_from_seed(seed);
    (0..n).map(|_| rng.random_range(-40.0..90.0)).collect()
}

fn random_queries(domain: usize, count: usize, seed: u64) -> Vec<Interval> {
    let mut rng = rng_from_seed(seed);
    (0..count)
        .map(|_| {
            let lo = rng.random_range(0..domain);
            let hi = rng.random_range(lo..domain);
            Interval::new(lo, hi)
        })
        .collect()
}

proptest! {
    #[test]
    fn snapshot_is_bit_identical_to_consistent_tree(
        k in 2usize..5,
        height in 1usize..7,
        seed in any::<u64>(),
    ) {
        let shape = TreeShape::new(k, height);
        let values = random_values(shape.nodes(), seed);
        let domain = shape.leaves();
        let tree = ConsistentTree::new(shape.clone(), values.clone(), domain);
        let snapshot = ConsistentSnapshot::from_tree_values(&shape, &values, domain);
        for q in random_queries(domain, 64, seed ^ 0x5107) {
            prop_assert_eq!(
                snapshot.answer(q).to_bits(),
                tree.range_query(q).to_bits(),
                "q = {}", q
            );
        }
    }

    #[test]
    fn snapshot_matches_decomposition_oracle_on_consistent_trees(
        k in 2usize..5,
        height in 2usize..6,
        seed in any::<u64>(),
    ) {
        // True tree counts: parents equal child sums exactly (integer
        // arithmetic), so prefix serving and the decomposition cannot
        // disagree even bitwise.
        let shape = TreeShape::new(k, height);
        let n = shape.leaves();
        let mut rng = rng_from_seed(seed);
        let counts: Vec<u64> = (0..n).map(|_| rng.random_range(0..50u64)).collect();
        let histogram = Histogram::from_counts(Domain::new("x", n).unwrap(), counts);
        let truth = QuerySequence::evaluate(&HierarchicalQuery::new(k), &histogram);
        let snapshot = ConsistentSnapshot::from_tree_values(&shape, &truth, n);
        let server = SubtreeServer::new(&shape);
        for q in random_queries(n, 48, seed ^ 0xC0DE) {
            let via_decomposition: f64 = shape
                .subtree_decomposition(q)
                .into_iter()
                .map(|v| truth[v])
                .sum();
            prop_assert_eq!(snapshot.answer(q).to_bits(), via_decomposition.to_bits());
            prop_assert_eq!(
                server.answer(&truth, Rounding::None, q).to_bits(),
                via_decomposition.to_bits()
            );
            prop_assert_eq!(snapshot.answer(q), histogram.range_count(q) as f64);
        }
    }

    #[test]
    fn subtree_server_matches_materialized_decomposition(
        k in 2usize..6,
        height in 1usize..7,
        seed in any::<u64>(),
        rounded in any::<bool>(),
    ) {
        let shape = TreeShape::new(k, height);
        let values = random_values(shape.nodes(), seed);
        let server = SubtreeServer::new(&shape);
        let rounding = if rounded { Rounding::NonNegativeInteger } else { Rounding::None };
        for q in random_queries(shape.leaves(), 48, seed ^ 0xDEC0) {
            let oracle: f64 = shape
                .subtree_decomposition(q)
                .into_iter()
                .map(|v| rounding.apply(values[v]))
                .sum();
            prop_assert_eq!(server.answer(&values, rounding, q).to_bits(), oracle.to_bits());
        }
    }

    #[test]
    fn batched_and_parallel_serving_match_single_answers(
        height in 2usize..9,
        seed in any::<u64>(),
        threads in 1usize..9,
    ) {
        let shape = TreeShape::new(2, height);
        let values = random_values(shape.nodes(), seed);
        let snapshot = ConsistentSnapshot::from_tree_values(&shape, &values, shape.leaves());
        let queries = random_queries(shape.leaves(), 97, seed ^ 0xBA7C);
        let singles: Vec<f64> = queries.iter().map(|&q| snapshot.answer(q)).collect();
        let mut batched = Vec::new();
        snapshot.answer_into(&queries, &mut batched);
        prop_assert_eq!(&batched, &singles);
        // The default floor would route this 97-query batch serially; a
        // zero floor keeps the scoped-thread split itself under test.
        let mut parallel = Vec::new();
        snapshot.answer_parallel(&queries, &mut parallel, threads);
        prop_assert_eq!(&parallel, &singles);
        let mut forced = Vec::new();
        snapshot.answer_parallel_with_floor(&queries, &mut forced, threads, 0);
        prop_assert_eq!(&forced, &singles);
    }

    #[test]
    fn sharded_pool_is_bit_identical_to_serial_serving(
        height in 2usize..9,
        seed in any::<u64>(),
        threads in 1usize..9,
    ) {
        // The persistent pool answers from per-worker snapshot clones; at
        // any worker count (HC_THREADS ∈ {1,2,4} ride the same resolver)
        // the stitched batch must equal the serial kernel bit for bit.
        let shape = TreeShape::new(2, height);
        let values = random_values(shape.nodes(), seed);
        let snapshot = ConsistentSnapshot::from_tree_values(&shape, &values, shape.leaves());
        let queries = random_queries(shape.leaves(), 97, seed ^ 0x54A2);
        let mut serial = Vec::new();
        snapshot.answer_into(&queries, &mut serial);
        let mut pool = ShardPool::with_floor(&snapshot, threads, 0);
        let mut pooled = Vec::new();
        pool.answer_into(&queries, &mut pooled);
        let bits = |v: &Vec<f64>| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        prop_assert_eq!(bits(&pooled), bits(&serial));
        // And again through the default-floor constructor, which routes
        // this batch serially: same bits either way.
        let mut floored = ShardPool::new(&snapshot, threads);
        pool.answer_into(&queries, &mut pooled);
        floored.answer_into(&queries, &mut serial);
        prop_assert_eq!(bits(&pooled), bits(&serial));
    }

    #[test]
    fn lane_blocked_fold_is_bit_identical_to_serial_on_binary_trees(
        height in 1usize..9,
        seed in any::<u64>(),
        rounded in any::<bool>(),
    ) {
        // k = 2: every contiguous sibling run the walk emits has at most
        // one node, so the lane-blocked fold must degenerate to the serial
        // fold exactly — the documented bit contract of `answer_blocked`.
        let shape = TreeShape::new(2, height);
        let values = random_values(shape.nodes(), seed);
        let server = SubtreeServer::new(&shape);
        let rounding = if rounded { Rounding::NonNegativeInteger } else { Rounding::None };
        for q in random_queries(shape.leaves(), 48, seed ^ 0xB10C) {
            prop_assert_eq!(
                server.answer_blocked(&values, rounding, q).to_bits(),
                server.answer(&values, rounding, q).to_bits(),
                "height = {}, q = {}", height, q
            );
        }
    }

    #[test]
    fn lane_blocked_fold_tracks_the_oracle_on_wide_trees(
        k in 6usize..17,
        seed in any::<u64>(),
    ) {
        // Wide branching exercises real lane blocks: the reassociated fold
        // must agree with the recursive oracle to float tolerance on every
        // query.
        let height = 3usize;
        let shape = TreeShape::new(k, height);
        let values = random_values(shape.nodes(), seed);
        let server = SubtreeServer::new(&shape);
        for q in random_queries(shape.leaves(), 32, seed ^ 0x51DE) {
            let oracle = server.answer_recursive(&values, Rounding::None, q);
            let got = server.answer_blocked(&values, Rounding::None, q);
            prop_assert!(
                (got - oracle).abs() <= 1e-9 * oracle.abs().max(1.0),
                "k = {}, q = {}: {} vs {}", k, q, got, oracle
            );
        }
    }

    #[test]
    fn blocked_rebuild_tracks_the_serial_prefix_scan(
        height in 1usize..9,
        seed in any::<u64>(),
    ) {
        // The blocked scan reassociates — bits may move — but every served
        // answer must agree with the serial rebuild to float tolerance.
        let shape = TreeShape::new(2, height);
        let values = random_values(shape.nodes(), seed);
        let domain = shape.leaves();
        let serial = ConsistentSnapshot::from_tree_values(&shape, &values, domain);
        let mut blocked = ConsistentSnapshot::from_leaves(&[], 0);
        blocked.rebuild_from_tree_values_blocked(&shape, &values, domain);
        for q in random_queries(domain, 48, seed ^ 0x810C) {
            let a = serial.answer(q);
            let b = blocked.answer(q);
            prop_assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "q = {}: {} vs {}", q, a, b
            );
        }
    }

    #[test]
    fn iterative_subtree_fold_matches_the_recursive_oracle(
        k in 2usize..6,
        height in 1usize..8,
        seed in any::<u64>(),
        rounded in any::<bool>(),
    ) {
        // The two-fringe iterative walk must visit the same decomposition
        // nodes in the same left-to-right order as the recursive fold, so
        // the -0.0-seeded accumulation agrees bit for bit.
        let shape = TreeShape::new(k, height);
        let values = random_values(shape.nodes(), seed);
        let server = SubtreeServer::new(&shape);
        let rounding = if rounded { Rounding::NonNegativeInteger } else { Rounding::None };
        for q in random_queries(shape.leaves(), 64, seed ^ 0x17E2) {
            prop_assert_eq!(
                server.answer(&values, rounding, q).to_bits(),
                server.answer_recursive(&values, rounding, q).to_bits(),
                "k = {}, height = {}, q = {}", k, height, q
            );
        }
    }
}

#[test]
fn degenerate_shard_pool_inputs_are_well_defined() {
    let shape = TreeShape::new(2, 5);
    let values: Vec<f64> = (0..shape.nodes()).map(|i| i as f64 * 0.5 - 3.0).collect();
    let snapshot = ConsistentSnapshot::from_tree_values(&shape, &values, shape.leaves());
    // 0 queries: output truncated, no worker woken, at any width.
    for workers in [1usize, 2, 8] {
        let mut pool = ShardPool::with_floor(&snapshot, workers, 0);
        let mut out = vec![1.0, 2.0];
        pool.answer_into(&[], &mut out);
        assert!(out.is_empty(), "workers = {workers}");
    }
    // More shards than queries: trailing workers stay parked, the stitched
    // prefix of chunks still equals the serial batch.
    let queries = random_queries(shape.leaves(), 3, 404);
    let mut serial = Vec::new();
    snapshot.answer_into(&queries, &mut serial);
    let mut wide = ShardPool::with_floor(&snapshot, 8, 0);
    let mut out = Vec::new();
    wide.answer_into(&queries, &mut out);
    assert_eq!(out, serial);
    // 1 shard: every batch is answered inline from the lone clone.
    let mut single = ShardPool::with_floor(&snapshot, 1, 0);
    single.answer_into(&queries, &mut out);
    assert_eq!(out, serial);
}

#[test]
fn degenerate_snapshot_inputs_are_well_defined() {
    // domain_size == 0: a snapshot over nothing answers nothing, totals to
    // an exact 0.0, and never panics on empty batches — serial or parallel.
    let mut snap = ConsistentSnapshot::from_leaves(&[], 0);
    assert_eq!(snap.domain_size(), 0);
    assert_eq!(snap.total(), 0.0);
    let mut out = vec![1.0, 2.0, 3.0]; // stale content must be truncated
    snap.answer_into(&[], &mut out);
    assert!(out.is_empty(), "empty batch must clear the output buffer");
    for threads in [1usize, 2, 4, 8] {
        let mut out = vec![9.0];
        snap.answer_parallel(&[], &mut out, threads);
        assert!(out.is_empty(), "threads = {threads}");
    }
    // An empty *query batch* against a non-empty snapshot is equally inert.
    let shape = TreeShape::new(2, 4);
    let values: Vec<f64> = (0..shape.nodes()).map(|i| i as f64).collect();
    let full = ConsistentSnapshot::from_tree_values(&shape, &values, shape.leaves());
    let mut out = vec![5.0; 7];
    full.answer_into(&[], &mut out);
    assert!(out.is_empty());
    for threads in [1usize, 3, 16] {
        let mut out = vec![5.0; 7];
        full.answer_parallel(&[], &mut out, threads);
        assert!(out.is_empty(), "threads = {threads}");
    }
    // Rebuild cycling through the empty domain leaves no stale prefix: a
    // non-empty → empty → non-empty round trip equals a fresh build exactly.
    let whole = Interval::new(0, shape.leaves() - 1);
    snap.rebuild_from_tree_values(&shape, &values, shape.leaves());
    assert_eq!(snap.answer(whole).to_bits(), full.answer(whole).to_bits());
    snap.rebuild_from_leaves(&[], 0);
    assert_eq!(snap.total(), 0.0);
    snap.rebuild_from_tree_values(&shape, &values, shape.leaves());
    assert_eq!(&snap, &full);
    // domain_size == 0 over a non-empty leaf slice: legal (padding only),
    // total is the empty prefix sum.
    snap.rebuild_from_leaves(&values[..4], 0);
    assert_eq!(snap.total(), 0.0);
    assert_eq!(snap.domain_size(), 0);
}

#[test]
fn rounded_tree_and_release_queries_still_match_the_decomposition_oracle() {
    // The production query paths (`TreeRelease::range_query_subtree`,
    // `RoundedTree::range_query`) now fold through `SubtreeServer`; pin them
    // to the materialized-decomposition arithmetic they historically used.
    let n = 64usize;
    let counts: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
    let histogram = Histogram::from_counts(Domain::new("x", n).unwrap(), counts);
    let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.4).unwrap());
    let release = pipeline.release(&histogram, &mut rng_from_seed(88));
    let rounded = release.infer_rounded();
    let shape = release.shape().clone();
    for q in random_queries(n, 100, 89) {
        for rounding in [Rounding::None, Rounding::NonNegativeInteger] {
            let oracle: f64 = shape
                .subtree_decomposition(q)
                .into_iter()
                .map(|v| rounding.apply(release.noisy_values()[v]))
                .sum();
            assert_eq!(
                release.range_query_subtree(q, rounding).to_bits(),
                oracle.to_bits()
            );
        }
        let rounded_oracle: f64 = shape
            .subtree_decomposition(q)
            .into_iter()
            .map(|v| rounded.node_values()[v])
            .sum();
        assert_eq!(rounded.range_query(q).to_bits(), rounded_oracle.to_bits());
    }
}

#[test]
fn flat_release_snapshot_reuses_the_fused_prefixes_bit_for_bit() {
    let n = 41usize;
    let counts: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % 11).collect();
    let histogram = Histogram::from_counts(Domain::new("x", n).unwrap(), counts);
    let release =
        FlatUniversal::new(Epsilon::new(0.3).unwrap()).release(&histogram, &mut rng_from_seed(90));
    for rounding in [Rounding::None, Rounding::NonNegativeInteger] {
        let snapshot = release.snapshot(rounding);
        let queries = random_queries(n, 64, 91);
        let mut via_snapshot = Vec::new();
        snapshot.answer_into(&queries, &mut via_snapshot);
        let mut via_release = Vec::new();
        release.answer_into(rounding, &queries, &mut via_release);
        let singles: Vec<f64> = queries
            .iter()
            .map(|&q| release.range_query(q, rounding))
            .collect();
        assert_eq!(via_snapshot, singles);
        assert_eq!(via_release, singles);
    }
}

/// The fixed-seed served-batch protocol shared by the per-backend goldens:
/// release at seed 7177 through `backend`, infer through the engine into a
/// snapshot, sample 8 ranges of length 9 at seed 9331, serve the batch, and
/// also serve the rounded noisy release through the `SubtreeServer`.
fn served_batch(backend: NoiseBackend) -> (Vec<f64>, Vec<f64>) {
    let n = 32usize;
    let counts: Vec<u64> = (0..n as u64).map(|i| (i * 11 + 3) % 13).collect();
    let histogram = Histogram::from_counts(Domain::new("golden", n).unwrap(), counts);
    let shape = TreeShape::for_domain(n, 2);
    let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.5).unwrap()).with_backend(backend);
    let release = pipeline.release(&histogram, &mut rng_from_seed(7177));
    let mut engine = BatchInference::for_shape(&shape);
    let snapshot = release.infer_snapshot(&mut engine);
    let queries = RangeWorkload::new(n, 9).sample_many(&mut rng_from_seed(9331), 8);
    let mut inferred = Vec::new();
    snapshot.answer_into(&queries, &mut inferred);
    let mut noisy_rounded = Vec::new();
    SubtreeServer::new(&shape).answer_into(
        release.noisy_values(),
        Rounding::NonNegativeInteger,
        &queries,
        &mut noisy_rounded,
    );
    (inferred, noisy_rounded)
}

#[test]
fn reference_golden_served_batch_seed_7177() {
    // Generated by this repository's own pipeline (f64 Debug round-trips
    // exactly); any drift in sampling, inference, or serving shows up as an
    // exact-equality failure. Frozen forever per the backend policy.
    let (inferred, noisy_rounded) = served_batch(NoiseBackend::Reference);
    let expected_inferred = [
        49.51060397133758,
        67.13964409874214,
        72.99662893615442,
        33.54392938759957,
        60.80116045557186,
        34.09070380561678,
        74.59911891468386,
        60.80116045557186,
    ];
    let expected_noisy_rounded = [67.0, 56.0, 82.0, 9.0, 70.0, 53.0, 86.0, 70.0];
    assert_eq!(inferred, expected_inferred);
    assert_eq!(noisy_rounded, expected_noisy_rounded);
}

#[test]
fn fast_ln_golden_served_batch_seed_7177() {
    // FastLn's ln arithmetic differs from Reference in the last ulps: two
    // served answers land one ulp away — the versioning story in action.
    let (inferred, noisy_rounded) = served_batch(NoiseBackend::FastLn);
    let expected_inferred = [
        49.51060397133758,
        67.13964409874214,
        72.99662893615442,
        33.54392938759957,
        60.80116045557185,
        34.09070380561678,
        74.59911891468386,
        60.80116045557185,
    ];
    let expected_noisy_rounded = [67.0, 56.0, 82.0, 9.0, 70.0, 53.0, 86.0, 70.0];
    assert_eq!(inferred, expected_inferred);
    assert_eq!(noisy_rounded, expected_noisy_rounded);
}

#[test]
fn fast_ln_wide_golden_served_batch_seed_7177() {
    // The v3 wide-lane sampler's served batch: its uniform mapping folds
    // the 2⁻⁵² scale into the fused ln reduction, so this is a distinct
    // frozen sequence (not a ulp-neighbour of Reference/FastLn). Frozen
    // forever per the backend policy.
    let (inferred, noisy_rounded) = served_batch(NoiseBackend::FastLnWide);
    let expected_inferred = [
        34.38234256782173,
        67.37836515244732,
        56.95802134244759,
        42.33481263635281,
        76.47153422307645,
        50.69103310575514,
        75.38206552887264,
        76.47153422307645,
    ];
    let expected_noisy_rounded = [47.0, 100.0, 86.0, 48.0, 86.0, 64.0, 81.0, 86.0];
    assert_eq!(inferred, expected_inferred);
    assert_eq!(noisy_rounded, expected_noisy_rounded);
}

#[test]
fn reference_golden_blocked_rebuild_served_batch_seed_7177() {
    // The opt-in blocked prefix scan over the *same* reference release the
    // `reference_golden_served_batch_seed_7177` pin serves: the
    // reassociated scan moves low bits (compare the two pins' tails), and
    // those bits are themselves frozen — the blocked mode is a versioned
    // serving surface, not an accident.
    let n = 32usize;
    let counts: Vec<u64> = (0..n as u64).map(|i| (i * 11 + 3) % 13).collect();
    let histogram = Histogram::from_counts(Domain::new("golden", n).unwrap(), counts);
    let shape = TreeShape::for_domain(n, 2);
    let release = HierarchicalUniversal::binary(Epsilon::new(0.5).unwrap())
        .release(&histogram, &mut rng_from_seed(7177));
    let mut engine = BatchInference::for_shape(&shape);
    let hbar = engine.infer(release.noisy_values());
    let mut blocked = ConsistentSnapshot::from_leaves(&[], 0);
    blocked.rebuild_from_tree_values_blocked(&shape, &hbar, n);
    let queries = RangeWorkload::new(n, 9).sample_many(&mut rng_from_seed(9331), 8);
    let mut answers = Vec::new();
    blocked.answer_into(&queries, &mut answers);
    let expected = [
        49.5106039713376,
        67.13964409874215,
        72.99662893615442,
        33.54392938759957,
        60.801160455571875,
        34.090703805616755,
        74.59911891468388,
        60.801160455571875,
    ];
    assert_eq!(answers, expected);
}

#[test]
fn golden_blocked_fold_wide_tree_seed_6007() {
    // The lane-blocked subtree fold on a branching-8 tree — the shape class
    // the blocked fold exists for — pinned at fixed seeds. On wide trees
    // the per-run lane combine reassociates, so these bits are the blocked
    // fold's own frozen sequence.
    let shape = TreeShape::new(8, 3);
    let values = random_values(shape.nodes(), 6007);
    let server = SubtreeServer::new(&shape);
    let queries = RangeWorkload::new(shape.leaves(), 37).sample_many(&mut rng_from_seed(6011), 8);
    let mut folded = Vec::new();
    server.answer_blocked_into(&values, Rounding::None, &queries, &mut folded);
    let expected = [
        143.0402203312359,
        207.39149803023105,
        274.5674192371539,
        390.2506380436623,
        390.2506380436623,
        390.2506380436623,
        190.11758564958265,
        269.0458843017897,
    ];
    assert_eq!(folded, expected);
}

#[test]
fn lazily_built_consistent_tree_snapshot_is_shared_and_correct() {
    let shape = TreeShape::new(2, 5);
    let values = random_values(shape.nodes(), 92);
    let tree = ConsistentTree::new(shape.clone(), values.clone(), 16);
    // First query builds the snapshot; later queries reuse it.
    let first = tree.range_query(Interval::new(0, 15));
    let snapshot = tree.snapshot();
    assert_eq!(
        snapshot.answer(Interval::new(0, 15)).to_bits(),
        first.to_bits()
    );
    let eager = ConsistentSnapshot::from_tree_values(&shape, &values, 16);
    for q in random_queries(16, 32, 93) {
        assert_eq!(tree.range_query(q).to_bits(), eager.answer(q).to_bits());
    }
    // Clones carry (or rebuild) an equivalent snapshot.
    let clone = tree.clone();
    assert_eq!(
        clone.range_query(Interval::new(3, 12)),
        tree.range_query(Interval::new(3, 12))
    );
}

#[test]
fn planner_recommendation_is_consistent_with_measured_errors() {
    // End-to-end sanity: on a long-range workload over a sparse domain the
    // planner must leave the flat strategy (the paper's crossover sits near
    // 2·10³, so the domain must be big enough for long ranges to exist),
    // and the measured errors of the two strategies must agree with the
    // predicted ordering.
    let n = 1usize << 14;
    let counts: Vec<u64> = (0..n as u64)
        .map(|i| if i % 19 == 0 { 4 } else { 0 })
        .collect();
    let histogram = Histogram::from_counts(Domain::new("x", n).unwrap(), counts);
    let eps = Epsilon::new(0.1).unwrap();
    let workload = RangeWorkload::new(n, n / 2);
    let plan = StrategyPlanner::new(n, eps).plan(&[workload]);
    assert!(
        !matches!(plan.choice, ReleaseStrategy::Flat),
        "8192-length ranges at ε=0.1 must not be served flat: {plan:?}"
    );

    let flat_pipeline = FlatUniversal::new(eps);
    let tree_pipeline = HierarchicalUniversal::binary(eps);
    let mut rng = rng_from_seed(94);
    let mut engine = BatchInference::for_shape(&TreeShape::for_domain(n, 2));
    let trials = 30;
    let (mut flat_err, mut tree_err) = (0.0, 0.0);
    for _ in 0..trials {
        let q = workload.sample(&mut rng);
        let truth = histogram.range_count(q) as f64;
        let f = flat_pipeline
            .release(&histogram, &mut rng)
            .snapshot(Rounding::None)
            .answer(q);
        let t = tree_pipeline
            .release(&histogram, &mut rng)
            .infer_snapshot(&mut engine)
            .answer(q);
        flat_err += (f - truth) * (f - truth);
        tree_err += (t - truth) * (t - truth);
    }
    assert!(
        tree_err < flat_err,
        "measured: tree {tree_err} vs flat {flat_err}, plan {plan:?}"
    );
}
