//! Failure-injection and edge-condition tests: the library must fail loudly
//! and precisely on invalid inputs, and behave sensibly at boundary sizes.

use hist_consistency::infer::{hierarchical_inference, isotonic_regression};
use hist_consistency::prelude::*;

// ---------------- invalid parameters fail loudly ----------------

#[test]
fn epsilon_rejects_the_whole_invalid_line() {
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(Epsilon::new(bad).is_err(), "accepted ε = {bad}");
    }
}

#[test]
fn laplace_rejects_degenerate_scales() {
    for bad in [0.0, -0.5, f64::NAN, f64::INFINITY] {
        assert!(Laplace::centered(bad).is_err(), "accepted b = {bad}");
    }
}

#[test]
#[should_panic(expected = "noisy vector must cover the tree")]
fn hierarchical_inference_checks_input_length() {
    let shape = TreeShape::new(2, 3);
    let _ = hierarchical_inference(&shape, &[1.0, 2.0]);
}

#[test]
#[should_panic(expected = "branching factor")]
fn tree_shape_rejects_unary_branching() {
    let _ = TreeShape::new(1, 3);
}

#[test]
#[should_panic(expected = "one value per tree node")]
fn tree_release_checks_vector_length() {
    let _ = TreeRelease::from_noisy(
        Epsilon::new(1.0).unwrap(),
        TreeShape::new(2, 3),
        4,
        vec![0.0; 3],
    );
}

#[test]
#[should_panic(expected = "domain exceeds the leaf level")]
fn tree_release_checks_domain_fits() {
    let _ = TreeRelease::from_noisy(
        Epsilon::new(1.0).unwrap(),
        TreeShape::new(2, 3), // 4 leaves
        5,
        vec![0.0; 7],
    );
}

// ---------------- boundary sizes behave ----------------

#[test]
fn single_bin_domain_works_end_to_end() {
    let h = Histogram::from_counts(Domain::new("x", 1).unwrap(), vec![9]);
    let mut rng = rng_from_seed(1);

    let sorted = UnattributedHistogram::new(Epsilon::new(1.0).unwrap()).release(&h, &mut rng);
    assert_eq!(sorted.baseline().len(), 1);
    assert_eq!(sorted.inferred().len(), 1);

    let tree = HierarchicalUniversal::binary(Epsilon::new(1.0).unwrap())
        .release(&h, &mut rng)
        .infer();
    assert_eq!(tree.leaves().len(), 1);
    let q = tree.range_query(Interval::new(0, 0));
    assert!(q.is_finite());
}

#[test]
fn empty_relation_supports_all_pipelines() {
    let relation = Relation::new(Domain::new("x", 16).unwrap());
    let h = Histogram::from_relation(&relation);
    assert_eq!(h.total(), 0);
    let mut rng = rng_from_seed(2);
    let tree = HierarchicalUniversal::binary(Epsilon::new(0.5).unwrap())
        .release(&h, &mut rng)
        .infer_rounded();
    // All-zero data: estimates exist, are non-negative integers.
    assert!(tree.node_values().iter().all(|&v| v >= 0.0));
}

#[test]
fn isotonic_handles_already_extreme_inputs() {
    // Huge dynamic range must not lose monotonicity to rounding error.
    let v = vec![1e12, -1e12, 1e-12, 0.0, 1e12];
    let s = isotonic_regression(&v);
    assert!(s.windows(2).all(|w| w[0] <= w[1] + 1e-3));
}

#[test]
fn rounding_mode_is_exact_at_half_integers() {
    let rel = hist_consistency::infer::FlatRelease::from_noisy(
        Epsilon::new(1.0).unwrap(),
        vec![0.5, -0.5, 1.49, -0.01],
    );
    let est = rel.estimates(Rounding::NonNegativeInteger);
    assert!(est.iter().all(|&v| v >= 0.0 && v.fract() == 0.0));
}

// ---------------- deterministic replay ----------------

#[test]
fn identical_seeds_give_identical_pipelines_across_estimators() {
    let h = Histogram::from_counts(
        Domain::new("x", 32).unwrap(),
        (0..32).map(|i| (i % 5) as u64).collect(),
    );
    let eps = Epsilon::new(0.2).unwrap();
    let run = |seed: u64| {
        let mut rng = rng_from_seed(seed);
        let s = UnattributedHistogram::new(eps).release(&h, &mut rng);
        let t = HierarchicalUniversal::binary(eps).release(&h, &mut rng);
        (s.inferred(), t.infer().node_values().to_vec())
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99).0, run(100).0);
}

#[test]
fn confidence_intervals_are_available_from_the_mechanism() {
    let h = Histogram::from_counts(Domain::new("x", 4).unwrap(), vec![5; 4]);
    let mut rng = rng_from_seed(3);
    let out = LaplaceMechanism::new(Epsilon::new(1.0).unwrap()).release(&UnitQuery, &h, &mut rng);
    let ci = out.confidence_interval(0, 0.95);
    assert!(ci.width() > 0.0);
    assert!(ci.contains(out.values()[0]));
}
