//! Backend-versioning contract tests (see `hc_noise::backend`): property
//! tests that the `Reference` backend is frozen to the pre-backend sampler,
//! that `FastLn` and the fused wide-lane `FastLnWide` are faithful Laplace
//! samplers within their documented accuracy, that the wide fill's bits are
//! independent of call splitting and lane position, and that the
//! trial-parallel batch pipeline is bit-identical to serial for all three
//! backends at any fan-out. (`HC_THREADS` ∈ {1, 2, unset}
//! is exercised end-to-end over real experiment binaries in
//! `crates/bench/tests/hc_threads.rs`; here the fan-out is passed
//! explicitly, which reaches the same code path `effective_threads` feeds.)

use hist_consistency::noise::{fast_ln, FAST_LN_MAX_ULP};
use hist_consistency::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// The sampler exactly as it existed before the backend abstraction
/// (PR 3's branchless inverse-CDF form). `NoiseBackend::Reference` pins
/// itself to this, bit for bit, forever.
fn pre_refactor_sample<R: Rng + ?Sized>(mu: f64, b: f64, rng: &mut R) -> f64 {
    let u = 0.5 - rng.random::<f64>();
    let magnitude = -b * (1.0 - 2.0 * u.abs()).ln();
    mu + magnitude.copysign(u)
}

proptest! {
    #[test]
    fn reference_backend_is_bit_identical_to_the_pre_refactor_sampler(
        seed in 0u64..1_000_000,
        mu in -50.0f64..50.0,
        scale in 0.01f64..100.0,
        len in 1usize..300,
    ) {
        let d = Laplace::new(mu, scale).unwrap();
        let mut via_backend = vec![0.0f64; len];
        d.fill_with(NoiseBackend::Reference, &mut rng_from_seed(seed), &mut via_backend);
        let mut rng = rng_from_seed(seed);
        for (i, v) in via_backend.iter().enumerate() {
            let old = pre_refactor_sample(mu, scale, &mut rng);
            prop_assert!(
                v.to_bits() == old.to_bits(),
                "sample {i} drifted: {v:?} vs pre-refactor {old:?}"
            );
        }
    }

    #[test]
    fn fast_ln_is_within_documented_ulp_of_library_ln(
        mantissa in 0u64..(1u64 << 52),
        exponent in 1u64..2046,
    ) {
        // Arbitrary positive normal f64, assembled from its fields.
        let x = f64::from_bits((exponent << 52) | mantissa);
        let got = fast_ln(x);
        let want = x.ln();
        let ulp = (got.to_bits() as i64 - want.to_bits() as i64).unsigned_abs();
        prop_assert!(
            ulp <= FAST_LN_MAX_ULP,
            "fast_ln({x:e}) = {got:e} vs ln = {want:e} ({ulp} ulp)"
        );
    }

    #[test]
    fn fast_backend_samples_track_reference_samples(
        seed in 0u64..1_000_000,
        scale in 0.01f64..100.0,
    ) {
        // Same uniforms, two ln implementations: per sample the backends
        // agree to fast_ln's relative accuracy (so moments, tails, and
        // everything downstream agree to far better than Monte-Carlo noise).
        let d = Laplace::centered(scale).unwrap();
        let n = 512;
        let mut reference = vec![0.0f64; n];
        let mut fast = vec![0.0f64; n];
        d.fill(&mut rng_from_seed(seed), &mut reference);
        d.fill_with(NoiseBackend::FastLn, &mut rng_from_seed(seed), &mut fast);
        for (r, f) in reference.iter().zip(&fast) {
            prop_assert!(r.signum() == f.signum());
            prop_assert!((r - f).abs() <= 1e-12 * r.abs().max(1e-300), "{r} vs {f}");
        }
    }

    #[test]
    fn fast_backend_empirical_moments_are_sane(seed in 0u64..100_000) {
        let d = Laplace::centered(3.0).unwrap();
        let n = 20_000;
        let mut samples = vec![0.0f64; n];
        d.fill_with(NoiseBackend::FastLn, &mut rng_from_seed(seed), &mut samples);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // std of the mean is sqrt(2·9/20000) ≈ 0.03; allow ~6σ so the
        // property holds across every generated seed.
        prop_assert!(mean.abs() < 0.2, "mean = {mean}");
        prop_assert!((var - d.variance()).abs() / d.variance() < 0.15, "var = {var}");
    }

    #[test]
    fn wide_fill_bits_are_independent_of_call_splitting(
        seed in any::<u64>(),
        len in 0usize..200,
        split in 0usize..200,
    ) {
        // One fill of N and two fills of (split, N − split) on one
        // continued rng must produce identical bits — the draw-policy
        // contract (sample i depends only on u64 draw i) holds across the
        // wide path's 16-element double-buffered blocks, the 8-lane strips,
        // and the scalar tail, for every split point. Lengths up to 200
        // cross several lane-block boundaries.
        let split = split.min(len);
        let d = Laplace::centered(2.0).unwrap();
        let mut whole = vec![0.0f64; len];
        d.fill_with(NoiseBackend::FastLnWide, &mut rng_from_seed(seed), &mut whole);
        let mut rng = rng_from_seed(seed);
        let mut parts = vec![0.0f64; len];
        let (head, tail) = parts.split_at_mut(split);
        d.fill_with(NoiseBackend::FastLnWide, &mut rng, head);
        d.fill_with(NoiseBackend::FastLnWide, &mut rng, tail);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        prop_assert_eq!(bits(&whole), bits(&parts));
    }

    #[test]
    fn wide_fill_matches_per_draw_scalar_samples(
        seed in any::<u64>(),
        len in 1usize..70,
    ) {
        // Every wide-fill sample equals the scalar `sample_with` of the
        // same draw index — lane position never leaks into sample values.
        let d = Laplace::new(-3.0, 1.5).unwrap();
        let mut filled = vec![0.0f64; len];
        d.fill_with(NoiseBackend::FastLnWide, &mut rng_from_seed(seed), &mut filled);
        let mut rng = rng_from_seed(seed);
        for (i, v) in filled.iter().enumerate() {
            let scalar = d.sample_with(NoiseBackend::FastLnWide, &mut rng);
            prop_assert!(
                v.to_bits() == scalar.to_bits(),
                "sample {i} differs: {v:?} vs scalar {scalar:?}"
            );
        }
    }

    #[test]
    fn wide_fill_ln_is_within_documented_ulp_of_library_ln(
        seed in any::<u64>(),
    ) {
        // Fill-level ulp audit of the fused kernel. At b = 1 every folded
        // scale constant (−2b, −b·LN2_HI, −b·LN2_LO) is exact, so
        // |sample| is exactly the kernel's −ln(u) — and u reconstructs
        // exactly from the draw's bits (u = ((bits >> 12) | 1)·2⁻⁵², a
        // 52-bit integer scaled by a power of two). The kernel must stay
        // within the documented FAST_LN_MAX_ULP of `f64::ln`; measured the
        // bound is ≤ 2 ulp over hundreds of millions of draws, and the
        // tighter bound is asserted too so a regression inside the
        // documented envelope still surfaces.
        let d = Laplace::new(0.0, 1.0).unwrap();
        let n = 512usize;
        let mut samples = vec![0.0f64; n];
        d.fill_with(NoiseBackend::FastLnWide, &mut rng_from_seed(seed), &mut samples);
        let mut rng = rng_from_seed(seed);
        for (i, s) in samples.iter().enumerate() {
            let bits = rng.next_u64();
            let u = ((bits >> 12) | 1) as f64 * (-52f64).exp2();
            let want = u.ln();
            let got = -s.abs();
            let ulp = (got.to_bits() as i64).abs_diff(want.to_bits() as i64);
            prop_assert!(
                ulp <= FAST_LN_MAX_ULP,
                "draw {i}: wide ln(u = {u:e}) = {got:e} vs ln = {want:e} ({ulp} ulp)"
            );
            prop_assert!(ulp <= 2, "draw {i}: measured bound regressed ({ulp} ulp)");
        }
    }

    #[test]
    fn batch_parallel_is_bit_identical_to_serial_for_all_backends(
        master in 0u64..1_000_000,
        trials in 1usize..9,
        height in 2usize..7,
        backend_idx in 0usize..3,
    ) {
        let backend = [
            NoiseBackend::Reference,
            NoiseBackend::FastLn,
            NoiseBackend::FastLnWide,
        ][backend_idx];
        let n = 1usize << (height - 1);
        let counts: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
        let histogram = Histogram::from_counts(Domain::new("x", n).unwrap(), counts);
        let shape = TreeShape::for_domain(n, 2);
        let prepared = LaplaceMechanism::new(Epsilon::new(0.7).unwrap())
            .with_backend(backend)
            .prepare(HierarchicalQuery::binary(), n);
        let mut engine = BatchInference::for_shape(&shape);
        let seeds = SeedStream::new(master);
        for rounded in [false, true] {
            let (mut sn, mut so) = (Vec::new(), Vec::new());
            engine.release_and_infer_batch(
                &prepared, &histogram, seeds, trials, rounded, Some(&mut sn), &mut so,
            );
            for threads in [1usize, 2, 5] {
                let (mut pn, mut po) = (Vec::new(), Vec::new());
                engine.release_and_infer_batch_parallel(
                    &prepared, &histogram, seeds, trials, rounded, threads, Some(&mut pn), &mut po,
                );
                prop_assert!(pn == sn, "noisy batch diverged (threads {threads})");
                prop_assert!(po == so, "inferred batch diverged (threads {threads})");
            }
            // Skipping the noisy output must not change the inference.
            let mut po = Vec::new();
            engine.release_and_infer_batch_parallel(
                &prepared, &histogram, seeds, trials, rounded, 3, None, &mut po,
            );
            prop_assert!(po == so, "inferred batch diverged without noisy output");
        }
    }
}
