//! The paper's Fig. 2 worked example, end to end through the public facade.

use hc_testutil::assert_close;
use hist_consistency::prelude::*;

fn example() -> Histogram {
    let domain = Domain::new("src", 4).expect("non-empty domain");
    Histogram::from_counts(domain, vec![2, 0, 10, 2])
}

#[test]
fn query_sequences_match_figure_2b() {
    let h = example();
    assert_eq!(UnitQuery.evaluate(&h), vec![2.0, 0.0, 10.0, 2.0]);
    assert_eq!(SortedQuery.evaluate(&h), vec![0.0, 2.0, 2.0, 10.0]);
    assert_eq!(
        HierarchicalQuery::binary().evaluate(&h),
        vec![14.0, 2.0, 12.0, 2.0, 0.0, 10.0, 2.0]
    );
}

#[test]
fn fixed_noisy_tree_infers_to_paper_answer() {
    // H~(I) = ⟨13, 3, 11, 4, 1, 12, 1⟩ → H̄(I) = ⟨14, 3, 11, 3, 0, 11, 0⟩.
    let shape = TreeShape::new(2, 3);
    let release = TreeRelease::from_noisy(
        Epsilon::new(1.0).unwrap(),
        shape,
        4,
        vec![13.0, 3.0, 11.0, 4.0, 1.0, 12.0, 1.0],
    );
    let inferred = release.infer();
    assert_close(
        inferred.node_values(),
        &[14.0, 3.0, 11.0, 3.0, 0.0, 11.0, 0.0],
        1e-12,
    );
}

#[test]
fn fixed_noisy_sorted_sequence_infers_to_paper_answer() {
    // S~(I) = ⟨1, 2, 0, 11⟩ → S̄(I) = ⟨1, 1, 1, 11⟩ (Fig. 2b, third row).
    let release = SortedRelease::from_noisy(Epsilon::new(1.0).unwrap(), vec![1.0, 2.0, 0.0, 11.0]);
    let inferred = release.inferred();
    assert_close(&inferred, &[1.0, 1.0, 1.0, 11.0], 1e-12);
}

#[test]
fn sensitivities_match_the_paper() {
    // Example 2, Prop. 3, Prop. 4 (ℓ = 3 for the 4-leaf binary tree).
    assert_eq!(UnitQuery.sensitivity(4), 1.0);
    assert_eq!(SortedQuery.sensitivity(4), 1.0);
    assert_eq!(HierarchicalQuery::binary().sensitivity(4), 3.0);
}

#[test]
fn example_5_error_formula() {
    // Sec. 2.1: error(L~) = 2n/ε².
    let n = 4;
    let eps = 0.5;
    let expected = 2.0 * n as f64 / (eps * eps);
    assert!((hist_consistency::infer::theory::error_unit_full(n, eps) - expected).abs() < 1e-12);
}
