//! Statistical quality gates for the estimators — the paper's inequalities
//! checked as executable assertions over many mechanism samples.

use hist_consistency::infer::theory;
use hist_consistency::prelude::*;

fn power_law_histogram(n: usize, seed: u64) -> Histogram {
    let mut rng = rng_from_seed(seed);
    let zipf = hist_consistency::noise::Zipf::new(n, 1.2).unwrap();
    let counts = zipf.sample_histogram(&mut rng, 20 * n);
    Histogram::from_counts(Domain::new("x", n).unwrap(), counts)
}

#[test]
fn isotonic_inference_never_increases_error_over_many_trials() {
    // Hwang & Peddada via Sec. 3.2: per trial, projection cannot move the
    // estimate further from any sorted target.
    let histogram = power_law_histogram(128, 1);
    let truth: Vec<f64> = histogram
        .sorted_counts()
        .into_iter()
        .map(|c| c as f64)
        .collect();
    let task = UnattributedHistogram::new(Epsilon::new(0.2).unwrap());
    let mut rng = rng_from_seed(2);
    for _ in 0..300 {
        let rel = task.release(&histogram, &mut rng);
        let base = sum_squared_error(rel.baseline(), &truth);
        let inf = sum_squared_error(&rel.inferred(), &truth);
        assert!(
            inf <= base + 1e-9,
            "inference increased error: {inf} > {base}"
        );
    }
}

#[test]
fn theorem2_gap_on_duplicate_heavy_sequences() {
    // A power-law histogram has d ≪ n; the measured S~/S̄ gap must be large
    // (the paper reports ≥ 10x on its datasets).
    let histogram = power_law_histogram(1024, 3);
    let d = histogram.distinct_count_values();
    assert!(d * 8 < histogram.len(), "dataset not in the d ≪ n regime");

    let truth: Vec<f64> = histogram
        .sorted_counts()
        .into_iter()
        .map(|c| c as f64)
        .collect();
    let task = UnattributedHistogram::new(Epsilon::new(0.1).unwrap());
    let mut rng = rng_from_seed(4);
    let trials = 60;
    let (mut base, mut inf) = (0.0, 0.0);
    for _ in 0..trials {
        let rel = task.release(&histogram, &mut rng);
        base += sum_squared_error(rel.baseline(), &truth);
        inf += sum_squared_error(&rel.inferred(), &truth);
    }
    assert!(
        inf * 10.0 < base,
        "gap below 10x: baseline {base}, inferred {inf}"
    );
}

#[test]
fn hbar_is_unbiased_for_range_queries() {
    // Theorem 4(i): the pure inference estimator is unbiased.
    let histogram = power_law_histogram(64, 5);
    let q = Interval::new(5, 40);
    let truth = histogram.range_count(q) as f64;
    let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.5).unwrap());
    let mut rng = rng_from_seed(6);
    let trials = 2000;
    let mut total = 0.0;
    for _ in 0..trials {
        total += pipeline
            .release(&histogram, &mut rng)
            .infer()
            .range_query(q);
    }
    let mean = total / trials as f64;
    // Std error of the mean ≈ sqrt(var/trials); var ≤ kℓ·2ℓ²/ε² = 6272.
    assert!((mean - truth).abs() < 8.0, "mean {mean} vs truth {truth}");
}

#[test]
fn hbar_dominates_htilde_over_a_query_grid() {
    // Theorem 4(ii) sampled: over a grid of ranges, H̄'s MSE ≤ H~'s.
    let histogram = power_law_histogram(64, 7);
    let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.3).unwrap());
    let queries: Vec<Interval> = (0..60)
        .map(|i| {
            let lo = (i * 7) % 50;
            Interval::new(lo, lo + 3 + (i % 11))
        })
        .collect();
    let truths: Vec<f64> = queries
        .iter()
        .map(|&q| histogram.range_count(q) as f64)
        .collect();

    let trials = 150;
    let mut subtree_err = vec![0.0; queries.len()];
    let mut inferred_err = vec![0.0; queries.len()];
    let mut rng = rng_from_seed(8);
    for _ in 0..trials {
        let rel = pipeline.release(&histogram, &mut rng);
        let tree = rel.infer();
        for (i, &q) in queries.iter().enumerate() {
            subtree_err[i] += (rel.range_query_subtree(q, Rounding::None) - truths[i]).powi(2);
            inferred_err[i] += (tree.range_query(q) - truths[i]).powi(2);
        }
    }
    let wins = queries
        .iter()
        .enumerate()
        .filter(|&(i, _)| inferred_err[i] <= subtree_err[i] * 1.05)
        .count();
    assert!(
        wins * 100 >= queries.len() * 90,
        "H̄ beat H~ on only {wins}/{} queries",
        queries.len()
    );
}

#[test]
fn theorem4_gap_factor_is_realized_at_height_8() {
    let shape = TreeShape::new(2, 8);
    let n = shape.leaves();
    let histogram = Histogram::from_counts(Domain::new("x", n).unwrap(), vec![1; n]);
    let q = theory::thm4_query(&shape);
    let truth = histogram.range_count(q) as f64;
    let pipeline = HierarchicalUniversal::binary(Epsilon::new(1.0).unwrap());

    let trials = 400;
    let (mut sub, mut inf) = (0.0, 0.0);
    let mut rng = rng_from_seed(9);
    for _ in 0..trials {
        let rel = pipeline.release(&histogram, &mut rng);
        sub += (rel.range_query_subtree(q, Rounding::None) - truth).powi(2);
        inf += (rel.infer().range_query(q) - truth).powi(2);
    }
    let measured = sub / inf;
    let predicted = theory::thm4_gap_factor(&shape); // (2·7·1 − 2)/3 = 4.0
    assert!(
        measured > predicted * 0.6,
        "measured factor {measured} vs predicted {predicted}"
    );
}

#[test]
fn error_of_baseline_matches_closed_form() {
    // error(S~) = 2n/ε² exactly in expectation (Definition 2.3 example).
    let n = 256;
    let histogram = Histogram::from_counts(Domain::new("x", n).unwrap(), vec![5; n]);
    let truth: Vec<f64> = vec![5.0; n];
    let eps = 0.5;
    let task = UnattributedHistogram::new(Epsilon::new(eps).unwrap());
    let trials = 300;
    let mut total = 0.0;
    let mut rng = rng_from_seed(10);
    for _ in 0..trials {
        let rel = task.release(&histogram, &mut rng);
        total += sum_squared_error(rel.baseline(), &truth);
    }
    let measured = total / trials as f64;
    let predicted = theory::error_sorted_baseline(n, eps);
    assert!(
        (measured - predicted).abs() / predicted < 0.12,
        "measured {measured} vs predicted {predicted}"
    );
}
