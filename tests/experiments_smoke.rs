//! Smoke tests: every experiment binary's library entry point runs in quick
//! mode and reports the claims it was built to check. This keeps the whole
//! reproduction harness compiling, running, and honest under `cargo test`.

use hc_bench::experiments as exp;
use hc_bench::RunConfig;

fn quick() -> RunConfig {
    RunConfig::quick()
}

#[test]
fn fig2_reports_worked_example() {
    let out = exp::fig2::run(quick());
    assert!(out.contains("<14, 3, 11, 3, 0, 11, 0>"));
}

#[test]
fn fig3_reports_uniform_run_reduction() {
    let out = exp::fig3::run(quick());
    assert!(out.contains("uniform run"));
    assert!(out.contains("distinct tail"));
}

#[test]
fn fig5_reports_order_of_magnitude_claim() {
    let out = exp::fig5::run(quick());
    assert!(out.contains("Minimum S~/S̄ gain observed"));
    assert!(out.contains("Social Network"));
    assert!(out.contains("NetTrace"));
    assert!(out.contains("Search Logs"));
}

#[test]
fn fig6_reports_crossover_and_series() {
    let out = exp::fig6::run(quick());
    assert!(out.contains("crossover"));
    assert!(out.contains("ε = 0.01"));
    assert!(out.matches("== Fig. 6").count() == 6, "2 datasets × 3 ε");
}

#[test]
fn fig7_reports_boundary_vs_interior() {
    let out = exp::fig7::run(quick());
    assert!(out.contains("uniform-run interior"));
    assert!(out.contains("count-change boundary"));
}

#[test]
fn thm2_reports_both_sweeps() {
    let out = exp::thm2_scaling::run(quick());
    assert!(out.contains("sweep over d"));
    assert!(out.contains("sweep over n"));
}

#[test]
fn thm4_reports_predicted_factor() {
    let out = exp::thm4_factor::run(quick());
    assert!(out.contains("predicted factor"));
    assert!(out.contains("9.33"));
}

#[test]
fn appendix_e_reports_scaling_reference() {
    let out = exp::appendix_e::run(quick());
    assert!(out.contains("N^(2/3) reference"));
}

#[test]
fn ablations_all_run() {
    assert!(exp::ablation_branching::run(quick()).contains("branching factor"));
    assert!(exp::ablation_budget::run(quick()).contains("budget allocation"));
    assert!(exp::ablation_wavelet::run(quick()).contains("wavelet"));
    assert!(exp::ablation_matrix::run(quick()).contains("crossover"));
    assert!(exp::ablation_nonneg::run(quick()).contains("non-negativity"));
    assert!(exp::ablation_geometric::run(quick()).contains("geometric"));
    assert!(exp::ablation_quadtree::run(quick()).contains("quadtree"));
}
