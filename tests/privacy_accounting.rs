//! Privacy-layer integration tests: sensitivity validation across all query
//! strategies (including the wavelet extension) and budget composition.

use hist_consistency::ext::wavelet::HaarQuery;
use hist_consistency::mech::empirical_sensitivity;
use hist_consistency::prelude::*;
use rand::Rng;

fn random_relation(seed: u64, domain_size: usize, records: usize) -> Relation {
    let mut rng = rng_from_seed(seed);
    let values = (0..records)
        .map(|_| rng.random_range(0..domain_size))
        .collect();
    Relation::from_records(Domain::new("x", domain_size).unwrap(), values).unwrap()
}

#[test]
fn all_strategies_respect_their_analytic_sensitivity() {
    for seed in 0..5u64 {
        let domain_size = 16;
        let relation = random_relation(seed, domain_size, 30);

        let checks: Vec<(f64, f64)> = vec![
            (
                empirical_sensitivity(&UnitQuery, &relation),
                UnitQuery.sensitivity(domain_size),
            ),
            (
                empirical_sensitivity(&SortedQuery, &relation),
                SortedQuery.sensitivity(domain_size),
            ),
            (
                empirical_sensitivity(&HierarchicalQuery::binary(), &relation),
                HierarchicalQuery::binary().sensitivity(domain_size),
            ),
            (
                empirical_sensitivity(&HierarchicalQuery::new(4), &relation),
                HierarchicalQuery::new(4).sensitivity(domain_size),
            ),
            (
                empirical_sensitivity(&HaarQuery, &relation),
                HaarQuery.sensitivity(domain_size),
            ),
        ];
        for (empirical, analytic) in checks {
            assert!(
                empirical <= analytic + 1e-9,
                "seed {seed}: empirical {empirical} exceeds analytic {analytic}"
            );
        }
    }
}

#[test]
fn hierarchical_sensitivity_is_tight() {
    // The analytic ℓ is achieved (not just an upper bound): some record
    // change must touch ℓ tree nodes.
    let relation = random_relation(9, 32, 50);
    let q = HierarchicalQuery::binary();
    let s = empirical_sensitivity(&q, &relation);
    assert!((s - q.sensitivity(32)).abs() < 1e-9, "not tight: {s}");
}

#[test]
fn budget_composes_across_histogram_releases() {
    // Sec. 2.1's composition protocol: two sequences at ε/2 each give ε.
    let total = Epsilon::new(1.0).unwrap();
    let mut budget = PrivacyBudget::new(total);
    let shares = total.split(2);

    let histogram = Histogram::from_counts(Domain::new("x", 8).unwrap(), vec![3; 8]);
    let mut rng = rng_from_seed(10);

    let e1 = budget.spend("unattributed", shares[0]).unwrap();
    let _s = UnattributedHistogram::new(e1).release(&histogram, &mut rng);

    let e2 = budget.spend("universal", shares[1]).unwrap();
    let _h = HierarchicalUniversal::binary(e2).release(&histogram, &mut rng);

    assert!(budget.remaining() < 1e-9);
    assert!(budget.spend("third", Epsilon::new(0.01).unwrap()).is_err());
    assert_eq!(budget.ledger().len(), 2);
}

#[test]
fn noise_scales_inversely_with_epsilon_share() {
    // Spending less ε must produce more noise: measure release variance at
    // two budget levels.
    let histogram = Histogram::from_counts(Domain::new("x", 4).unwrap(), vec![10; 4]);
    let truth = [10.0, 10.0, 10.0, 10.0];
    let trials = 4000;

    let variance_at = |eps: f64, seed: u64| {
        let task = UnattributedHistogram::new(Epsilon::new(eps).unwrap());
        let mut rng = rng_from_seed(seed);
        let mut sq = 0.0;
        for _ in 0..trials {
            let rel = task.release(&histogram, &mut rng);
            sq += (rel.baseline()[0] - truth[0]).powi(2);
        }
        sq / trials as f64
    };

    let v_full = variance_at(1.0, 11);
    let v_half = variance_at(0.5, 12);
    // Var ∝ 1/ε²: halving ε quadruples variance.
    let ratio = v_half / v_full;
    assert!((ratio - 4.0).abs() < 0.8, "variance ratio {ratio}");
}

#[test]
fn post_processing_does_not_touch_the_budget() {
    // Proposition 2 operationally: inference consumes no ε — it is a pure
    // function of the released values.
    let histogram = Histogram::from_counts(Domain::new("x", 8).unwrap(), vec![1; 8]);
    let mut rng = rng_from_seed(13);
    let eps = Epsilon::new(0.3).unwrap();
    let mut budget = PrivacyBudget::new(eps);
    let spent = budget.spend("release", eps).unwrap();

    let release = HierarchicalUniversal::binary(spent).release(&histogram, &mut rng);
    // Arbitrarily many post-processing passes later…
    for _ in 0..5 {
        let _ = release.infer();
        let _ = release.infer_rounded();
    }
    // …the ledger still shows exactly one spend.
    assert_eq!(budget.ledger().len(), 1);
    assert!((budget.spent() - 0.3).abs() < 1e-12);
}
