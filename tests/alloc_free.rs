//! The allocation-free pipeline contract, enforced with a counting
//! allocator: after warm-up, `BatchInference::release_and_infer` /
//! `release_and_infer_rounded` (and the experiment-loop building blocks
//! they are made of) perform **zero** heap allocations per trial — and the
//! serving layer (`ConsistentSnapshot` rebuild + `answer_into`,
//! `SubtreeServer::answer_into`) answers warm query batches with zero heap
//! allocations per batch.
//!
//! The whole check lives in a single `#[test]` because the counter is
//! process-global: the default test harness runs tests on multiple threads,
//! and any concurrent test's allocations would show up in the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use hist_consistency::prelude::*;

/// Wraps the system allocator and counts every allocation call.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates directly to `System`, which upholds the `GlobalAlloc`
// contract; the counter is a relaxed atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `body` and returns how many allocation calls it made.
fn allocations_during(body: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    body();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn release_and_infer_pipeline_is_allocation_free_after_warmup() {
    // A power-of-two domain so the release needs no padding bookkeeping,
    // large enough that any per-trial allocation would be unmistakable.
    let n = 1usize << 12;
    let counts: Vec<u64> = (0..n as u64).map(|i| i % 5).collect();
    let histogram = Histogram::from_counts(Domain::new("x", n).expect("non-empty"), counts);
    let shape = TreeShape::for_domain(n, 2);
    let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.5).expect("valid ε"));
    let prepared = pipeline.prepare(n);
    let mut engine = BatchInference::for_shape(&shape);
    let mut out = Vec::new();
    let mut rng = rng_from_seed(1);

    // Warm-up: grow every scratch buffer to its high-water mark.
    for _ in 0..2 {
        engine.release_and_infer(&prepared, &histogram, &mut rng, &mut out);
        engine.release_and_infer_rounded(&prepared, &histogram, &mut rng, &mut out);
    }

    let during_trials = allocations_during(|| {
        for _ in 0..16 {
            engine.release_and_infer(&prepared, &histogram, &mut rng, &mut out);
            engine.release_and_infer_rounded(&prepared, &histogram, &mut rng, &mut out);
        }
    });
    assert_eq!(
        during_trials, 0,
        "release_and_infer(_rounded) allocated after warm-up"
    );
    // The result is real: consistent-ish rounded values over the tree.
    assert_eq!(out.len(), shape.nodes());
    assert!(out.iter().all(|&v| v >= 0.0 && v.fract() == 0.0));

    // The experiment-loop building blocks share the contract: re-release
    // into warm buffers, inference + fused zero/round into a warm output.
    let mut release = pipeline.empty_release(n);
    let mut hbar = Vec::new();
    pipeline.release_into(&histogram, &mut rng, &mut release);
    release.infer_rounded_into(&mut engine, &mut hbar);
    let during_loop_blocks = allocations_during(|| {
        for _ in 0..8 {
            pipeline.release_into(&histogram, &mut rng, &mut release);
            release.infer_rounded_into(&mut engine, &mut hbar);
        }
    });
    assert_eq!(
        during_loop_blocks, 0,
        "release_into + infer_rounded_into allocated after warm-up"
    );

    // The serving layer: snapshot rebuild + batched answers and the subtree
    // fold over a warm query batch allocate nothing per batch.
    let shape_ref = &shape;
    let mut queries = Vec::new();
    hist_consistency::data::RangeWorkload::new(n, 64).sample_into(&mut rng, 256, &mut queries);
    let mut snapshot = ConsistentSnapshot::from_tree_values(shape_ref, &hbar, n);
    let server = SubtreeServer::new(shape_ref);
    let (mut served, mut folded) = (Vec::new(), Vec::new());
    snapshot.answer_into(&queries, &mut served);
    server.answer_into(&hbar, Rounding::None, &queries, &mut folded);
    let during_serving = allocations_during(|| {
        for _ in 0..8 {
            snapshot.rebuild_from_tree_values(shape_ref, &hbar, n);
            snapshot.answer_into(&queries, &mut served);
            server.answer_into(&hbar, Rounding::None, &queries, &mut folded);
        }
    });
    assert_eq!(
        during_serving, 0,
        "warm snapshot rebuild + answer_into allocated"
    );
    assert_eq!(served.len(), queries.len());
    assert_eq!(folded.len(), queries.len());

    // The sharded pool: once the hand-off buffers and every shard's
    // snapshot clone have hit their high-water marks, republishing and
    // answering warm batches allocate nothing — on the dispatching thread
    // *or* the workers (the counter is process-global, so worker-side
    // allocations would land in the delta too). Floor 0 forces the
    // worker hand-off path rather than the serial fallback.
    let mut pool = ShardPool::with_floor(&snapshot, 2, 0);
    let mut pooled = Vec::new();
    pool.publish(&snapshot);
    pool.answer_into(&queries, &mut pooled);
    let during_pool = allocations_during(|| {
        for _ in 0..8 {
            pool.publish(&snapshot);
            pool.answer_into(&queries, &mut pooled);
        }
    });
    assert_eq!(
        during_pool, 0,
        "warm ShardPool publish + answer_into allocated"
    );
    assert_eq!(pooled, served, "pool answers must match the serial batch");
}
