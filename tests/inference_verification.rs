//! Cross-validation of the paper's closed forms against the generic solver
//! stack in `hc-linalg` — the "don't trust the proofs" tests.

use hc_testutil::assert_close;
use hist_consistency::linalg::{conjugate_gradient, lstsq, CgOptions, CsrMatrix, Matrix};
use hist_consistency::prelude::*;
use rand::Rng;

fn aggregation_matrix(shape: &TreeShape) -> Matrix {
    Matrix::from_fn(shape.nodes(), shape.leaves(), |v, leaf| {
        if shape.leaf_span(v).contains(leaf) {
            1.0
        } else {
            0.0
        }
    })
}

fn aggregation_csr(shape: &TreeShape) -> CsrMatrix {
    let mut triplets = Vec::new();
    for v in 0..shape.nodes() {
        let span = shape.leaf_span(v);
        for leaf in span.lo()..=span.hi() {
            triplets.push((v, leaf, 1.0));
        }
    }
    CsrMatrix::from_triplets(shape.nodes(), shape.leaves(), triplets)
}

#[test]
fn theorem3_equals_dense_ols_across_shapes() {
    for (k, height, seed) in [(2usize, 5usize, 1u64), (2, 6, 2), (3, 4, 3), (5, 3, 4)] {
        let shape = TreeShape::new(k, height);
        let mut rng = rng_from_seed(seed);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(-20.0..50.0))
            .collect();

        let closed_form = hierarchical_inference(&shape, &noisy);

        let a = aggregation_matrix(&shape);
        let leaves = lstsq(&a, &noisy).expect("aggregation matrix has full column rank");
        let generic = a.matvec(&leaves).expect("dimensions match");
        assert_close(&closed_form, &generic, 1e-7);
    }
}

#[test]
fn theorem3_equals_sparse_cg_at_larger_scale() {
    // Height 11 binary tree: 1024 leaves, 2047 nodes — far past what the
    // dense path can verify comfortably.
    let shape = TreeShape::new(2, 11);
    let mut rng = rng_from_seed(5);
    let noisy: Vec<f64> = (0..shape.nodes())
        .map(|_| rng.random_range(-30.0..80.0))
        .collect();

    let closed_form = hierarchical_inference(&shape, &noisy);

    let a = aggregation_csr(&shape);
    let rhs = a.transpose_matvec(&noisy).expect("dimensions match");
    let solved = conjugate_gradient(
        a.gram_operator(),
        &rhs,
        CgOptions {
            tolerance: 1e-12,
            ..CgOptions::default()
        },
    )
    .expect("SPD normal equations converge");
    let generic = a.matvec(&solved.x).expect("dimensions match");
    assert_close(&closed_form, &generic, 1e-5);
}

#[test]
fn theorem1_minmax_equals_pava_on_adversarial_patterns() {
    let patterns: Vec<Vec<f64>> = vec![
        vec![5.0, 4.0, 3.0, 2.0, 1.0],                  // fully reversed
        vec![1.0, 1.0, 1.0, 1.0],                       // constant
        vec![10.0, -10.0, 10.0, -10.0, 10.0],           // alternating
        vec![0.0, 100.0, 0.0, 0.0, 0.0, 0.0, 0.0],      // one spike
        vec![-5.0, -4.0, -6.0, -3.0, -7.0, -2.0, -8.0], // negative sawtooth
    ];
    for p in patterns {
        let pava = isotonic_regression(&p);
        let minmax = hist_consistency::infer::minmax_reference(&p);
        assert_close(&pava, &minmax, 1e-9);
    }
}

#[test]
fn inferred_tree_beats_every_individual_query_variance() {
    // Theorem 4(ii) instantiated: for each *node* query, the inferred
    // estimate's empirical variance is at most the raw noisy count's.
    let shape = TreeShape::new(2, 6);
    let n = shape.leaves();
    let histogram = Histogram::from_counts(
        Domain::new("x", n).expect("non-empty"),
        (0..n).map(|i| (i % 3) as u64).collect(),
    );
    let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.5).unwrap());
    let truth = HierarchicalQuery::binary().evaluate(&histogram);

    let trials = 400;
    let mut raw_sq = vec![0.0; shape.nodes()];
    let mut inf_sq = vec![0.0; shape.nodes()];
    let mut rng = rng_from_seed(6);
    for _ in 0..trials {
        let release = pipeline.release(&histogram, &mut rng);
        let inferred = hierarchical_inference(&shape, release.noisy_values());
        for v in 0..shape.nodes() {
            raw_sq[v] += (release.noisy_values()[v] - truth[v]).powi(2);
            inf_sq[v] += (inferred[v] - truth[v]).powi(2);
        }
    }
    let mut better = 0;
    for v in 0..shape.nodes() {
        if inf_sq[v] <= raw_sq[v] {
            better += 1;
        }
    }
    // Sampling noise allows a few inversions; the vast majority must improve.
    assert!(
        better * 100 >= shape.nodes() * 95,
        "only {better}/{} nodes improved",
        shape.nodes()
    );
}

#[test]
fn root_estimate_variance_shrinks_as_theory_predicts() {
    // The root of the inferred tree averages ~n/ℓ-worth of evidence; its
    // variance must be far below the raw root's 2ℓ²/ε².
    let shape = TreeShape::new(2, 8);
    let n = shape.leaves();
    let histogram = Histogram::from_counts(Domain::new("x", n).expect("non-empty"), vec![2; n]);
    let eps = Epsilon::new(1.0).unwrap();
    let pipeline = HierarchicalUniversal::binary(eps);
    let truth = (2 * n) as f64;

    let trials = 500;
    let mut raw_sq = 0.0;
    let mut inf_sq = 0.0;
    let mut rng = rng_from_seed(7);
    for _ in 0..trials {
        let release = pipeline.release(&histogram, &mut rng);
        raw_sq += (release.noisy_values()[0] - truth).powi(2);
        inf_sq += (release.infer().node_values()[0] - truth).powi(2);
    }
    let raw_var = raw_sq / trials as f64;
    let inf_var = inf_sq / trials as f64;
    assert!(
        inf_var * 1.5 < raw_var,
        "root variance: raw {raw_var} vs inferred {inf_var}"
    );
}
