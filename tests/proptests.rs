//! Property-based tests over the core invariants, using proptest.
//!
//! These go beyond the unit tests' fixed cases: arbitrary inputs exercise
//! the projection laws (Theorems 1 and 3), the tree geometry, the Haar
//! transform, and the extension modules.

use hist_consistency::ext::graphical::{is_graphical, nearest_graphical};
use hist_consistency::ext::quadtree::{morton_decode, morton_encode};
use hist_consistency::ext::wavelet::HaarQuery;
use hist_consistency::infer::{
    alpha_half_width, epsilon_for_alpha_width, hierarchical_inference, isotonic_regression,
    isotonic_regression_weighted, minmax_reference, SizePrediction,
};
use hist_consistency::prelude::*;
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e4f64..1e4, 1..max_len)
}

proptest! {
    // ---------------- isotonic regression (Theorem 1) ----------------

    #[test]
    fn isotonic_output_is_sorted(v in finite_vec(80)) {
        let s = isotonic_regression(&v);
        prop_assert!(s.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }

    #[test]
    fn isotonic_is_idempotent(v in finite_vec(60)) {
        let once = isotonic_regression(&v);
        let twice = isotonic_regression(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn isotonic_preserves_sum(v in finite_vec(60)) {
        let s = isotonic_regression(&v);
        let before: f64 = v.iter().sum();
        let after: f64 = s.iter().sum();
        prop_assert!((before - after).abs() < 1e-6 * (1.0 + before.abs()));
    }

    #[test]
    fn isotonic_matches_minmax_formula(v in finite_vec(24)) {
        let pava = isotonic_regression(&v);
        let spec = minmax_reference(&v);
        for (a, b) in pava.iter().zip(&spec) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn isotonic_is_a_projection(v in finite_vec(30), perturbation in finite_vec(30)) {
        // No feasible (sorted) point constructed by perturbing-and-sorting is
        // closer to v than the projection.
        let s = isotonic_regression(&v);
        let d_proj: f64 = v.iter().zip(&s).map(|(a, b)| (a - b) * (a - b)).sum();

        let m = v.len().min(perturbation.len());
        let mut candidate: Vec<f64> = v[..m]
            .iter()
            .zip(&perturbation[..m])
            .map(|(a, p)| a + p * 0.1)
            .collect();
        candidate.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        // Extend candidate to full length keeping sortedness.
        let mut full = candidate;
        while full.len() < v.len() {
            let last = *full.last().expect("non-empty");
            full.push(last);
        }
        let d_cand: f64 = v.iter().zip(&full).map(|(a, b)| (a - b) * (a - b)).sum();
        prop_assert!(d_cand >= d_proj - 1e-6);
    }

    #[test]
    fn isotonic_translation_equivariance(v in finite_vec(40), shift in -1e3f64..1e3) {
        let base = isotonic_regression(&v);
        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        let out = isotonic_regression(&shifted);
        for (a, b) in out.iter().zip(&base) {
            prop_assert!((a - (b + shift)).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_isotonic_is_sorted_and_idempotent(
        v in finite_vec(40),
        w in prop::collection::vec(0.1f64..10.0, 40),
    ) {
        let weights = &w[..v.len().min(w.len())];
        let values = &v[..weights.len()];
        let s = isotonic_regression_weighted(values, weights);
        prop_assert!(s.windows(2).all(|p| p[0] <= p[1] + 1e-9));
        let again = isotonic_regression_weighted(&s, weights);
        for (a, b) in s.iter().zip(&again) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    // ---------------- hierarchical inference (Theorem 3) ----------------

    #[test]
    fn hierarchical_output_is_consistent(
        height in 1usize..6,
        k in 2usize..4,
        seed in any::<u64>(),
    ) {
        let shape = TreeShape::new(k, height);
        let mut rng = rng_from_seed(seed);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rand::Rng::random_range(&mut rng, -100.0..100.0))
            .collect();
        let h = hierarchical_inference(&shape, &noisy);
        for v in 0..shape.nodes() {
            if !shape.is_leaf(v) {
                let child_sum: f64 = shape.children(v).map(|c| h[c]).sum();
                prop_assert!((h[v] - child_sum).abs() < 1e-6 * (1.0 + h[v].abs()));
            }
        }
    }

    #[test]
    fn hierarchical_inference_is_idempotent(
        height in 1usize..6,
        seed in any::<u64>(),
    ) {
        let shape = TreeShape::new(2, height);
        let mut rng = rng_from_seed(seed);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rand::Rng::random_range(&mut rng, -50.0..50.0))
            .collect();
        let once = hierarchical_inference(&shape, &noisy);
        let twice = hierarchical_inference(&shape, &once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn consistent_input_is_a_fixed_point(
        height in 2usize..6,
        seed in any::<u64>(),
    ) {
        // Build a consistent tree from random leaves; inference must return
        // it unchanged (it is already the closest consistent point).
        let shape = TreeShape::new(2, height);
        let mut rng = rng_from_seed(seed);
        let mut values = vec![0.0f64; shape.nodes()];
        let first_leaf = shape.leaf_node(0);
        for v in values[first_leaf..].iter_mut() {
            *v = rand::Rng::random_range(&mut rng, -20.0..20.0);
        }
        for v in (0..first_leaf).rev() {
            values[v] = shape.children(v).map(|c| values[c]).sum();
        }
        let h = hierarchical_inference(&shape, &values);
        for (a, b) in h.iter().zip(&values) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    // ---------------- tree geometry ----------------

    #[test]
    fn subtree_decomposition_tiles_any_range(
        height in 2usize..8,
        raw_lo in any::<u32>(),
        raw_len in any::<u32>(),
    ) {
        let shape = TreeShape::new(2, height);
        let n = shape.leaves();
        let lo = (raw_lo as usize) % n;
        let hi = lo + (raw_len as usize) % (n - lo);
        let target = Interval::new(lo, hi);
        let nodes = shape.subtree_decomposition(target);
        let mut covered = vec![false; n];
        for v in nodes {
            let span = shape.leaf_span(v);
            for (i, slot) in covered
                .iter_mut()
                .enumerate()
                .take(span.hi() + 1)
                .skip(span.lo())
            {
                prop_assert!(!*slot, "overlap at {i}");
                prop_assert!(target.contains(i), "node outside target");
                *slot = true;
            }
        }
        for (i, &slot) in covered.iter().enumerate().take(hi + 1).skip(lo) {
            prop_assert!(slot, "gap at {i}");
        }
    }

    #[test]
    fn binary_decomposition_uses_at_most_two_nodes_per_level(
        height in 2usize..9,
        raw_lo in any::<u32>(),
        raw_len in any::<u32>(),
    ) {
        let shape = TreeShape::new(2, height);
        let n = shape.leaves();
        let lo = (raw_lo as usize) % n;
        let hi = lo + (raw_len as usize) % (n - lo);
        let nodes = shape.subtree_decomposition(Interval::new(lo, hi));
        let mut per_level = vec![0usize; height];
        for v in nodes {
            per_level[shape.depth(v)] += 1;
        }
        prop_assert!(per_level.iter().all(|&c| c <= 2));
    }

    // ---------------- Haar transform ----------------

    #[test]
    fn haar_round_trips(counts in prop::collection::vec(0.0f64..1e4, 1..64)) {
        let c = HaarQuery.transform(&counts);
        let back = HaarQuery.reconstruct(&c, counts.len());
        for (a, b) in back.iter().zip(&counts) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn haar_base_coefficient_is_total(counts in prop::collection::vec(0.0f64..1e3, 1..64)) {
        let c = HaarQuery.transform(&counts);
        let total: f64 = counts.iter().sum();
        prop_assert!((c[0] - total).abs() < 1e-6);
    }

    // ---------------- extensions ----------------

    #[test]
    fn morton_encoding_round_trips(x in 0u32..65_536, y in 0u32..65_536) {
        let (dx, dy) = morton_decode(morton_encode(x, y));
        prop_assert_eq!((dx, dy), (x, y));
    }

    #[test]
    fn graphical_repair_always_produces_graphical(
        degrees in prop::collection::vec(0u64..50, 1..40),
    ) {
        let repaired = nearest_graphical(&degrees);
        prop_assert!(is_graphical(&repaired));
        prop_assert_eq!(repaired.len(), degrees.len());
    }

    #[test]
    fn graphical_sequences_survive_repair_unchanged(
        // Build a genuinely graphical sequence from a random graph.
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..30),
    ) {
        let mut g = Graph::new(12);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        let mut degrees = g.degree_sequence();
        degrees.reverse(); // non-increasing
        prop_assert!(is_graphical(&degrees));
        let repaired = nearest_graphical(&degrees);
        prop_assert_eq!(repaired, degrees);
    }

    // ---------------- data layer ----------------

    #[test]
    fn relation_round_trips_through_histogram(
        counts in prop::collection::vec(0u64..20, 1..32),
    ) {
        let domain = Domain::new("x", counts.len()).unwrap();
        let relation = Relation::from_counts(domain, &counts).unwrap();
        let histogram = Histogram::from_relation(&relation);
        prop_assert_eq!(histogram.counts(), &counts[..]);
    }

    #[test]
    fn range_counts_are_additive(
        counts in prop::collection::vec(0u64..20, 2..32),
        split in any::<u32>(),
    ) {
        let n = counts.len();
        let domain = Domain::new("x", n).unwrap();
        let histogram = Histogram::from_counts(domain, counts);
        let mid = 1 + (split as usize) % (n - 1);
        let whole = histogram.range_count(Interval::new(0, n - 1));
        let left = histogram.range_count(Interval::new(0, mid - 1));
        let right = histogram.range_count(Interval::new(mid, n - 1));
        prop_assert_eq!(whole, left + right);
    }
    // ---------------- accuracy-first planning ----------------

    fn accuracy_inversion_round_trips(
        sensitivity in 1.0f64..16.0,
        m in 1usize..4096,
        alpha in 0.001f64..0.5,
        half in 1.0f64..1e6,
    ) {
        // Solving ε for a target α-width and re-pricing that width at the
        // solved ε must land back on the target (exact algebra, so the
        // tolerance is pure float noise).
        let eps = epsilon_for_alpha_width(sensitivity, m, alpha, half);
        prop_assert!(eps > 0.0 && eps.is_finite());
        let back = alpha_half_width(sensitivity / eps, m, alpha);
        prop_assert!(
            (back - half).abs() <= 1e-9 * half,
            "inverted ε {} re-prices to {} instead of {}",
            eps,
            back,
            half
        );
    }

    fn custom_split_never_prices_worse_than_geometric(
        logn in 4u32..11,
        sizes in prop::collection::vec(1usize..64, 1..4),
        ratio in 0.3f64..3.0,
        eps in 0.05f64..2.0,
    ) {
        // The workload-optimized custom split minimizes the aggregated
        // variance objective, so at equal ε its workload-mean price can
        // never exceed any geometric candidate's (up to the optimizer's
        // 1e-12 weight floor).
        let n = 1usize << logn;
        let planner = StrategyPlanner::new(n, Epsilon::new(eps).unwrap())
            .with_budget_ratios(vec![ratio]);
        let workload: Vec<RangeWorkload> = sizes
            .iter()
            .map(|&s| RangeWorkload::new(n, s.min(n)))
            .collect();
        let plan = planner.plan(&workload[..]);
        let mean_of = |f: fn(&SizePrediction) -> f64| {
            plan.per_size.iter().map(f).sum::<f64>() / plan.per_size.len() as f64
        };
        prop_assert!(
            mean_of(|p| p.custom) <= mean_of(|p| p.budgeted) * (1.0 + 1e-9),
            "custom {} vs geometric {} (ratio {})",
            mean_of(|p| p.custom),
            mean_of(|p| p.budgeted),
            ratio
        );
    }

    // ---------------- privacy accounting ----------------

    fn accountant_never_over_spends(
        total in 0.1f64..5.0,
        delta_allowance in 1e-9f64..1e-2,
        spends in prop::collection::vec((0.01f64..1.0, 0.0f64..1e-3), 1..24),
    ) {
        // Under any interleaving of named (ε, δ) spends — some of which are
        // rejected — the accountant's running totals never exceed either
        // allowance, and the ledger always reconciles with the totals.
        let mut account = PrivacyAccountant::new(Epsilon::new(total).unwrap())
            .with_delta(delta_allowance)
            .unwrap();
        for (i, (e, d)) in spends.iter().enumerate() {
            let before = (account.spent(), account.spent_delta());
            let outcome =
                account.spend_at(format!("spend-{i}"), Epsilon::new(*e).unwrap(), *d, i as u64);
            if outcome.is_err() {
                // Failed spends must leave the account untouched.
                prop_assert_eq!(before, (account.spent(), account.spent_delta()));
            }
            prop_assert!(account.spent() <= total * (1.0 + 1e-9));
            prop_assert!(account.spent_delta() <= delta_allowance * (1.0 + 1e-9));
            let ledger_eps: f64 = account.ledger().iter().map(|l| l.epsilon).sum();
            let ledger_delta: f64 = account.ledger().iter().map(|l| l.delta).sum();
            prop_assert!((ledger_eps - account.spent()).abs() <= 1e-9 * total.max(1.0));
            prop_assert!((ledger_delta - account.spent_delta()).abs() <= 1e-9);
        }
    }
}
