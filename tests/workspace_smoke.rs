//! Workspace-level smoke test: every experiment binary's library entry point
//! runs in `--quick` mode without panicking, produces output, and is
//! bit-reproducible for a fixed seed.
//!
//! `tests/experiments_smoke.rs` asserts experiment-specific *content*; this
//! file asserts the *harness contract* shared by all 17 binaries: each
//! `src/bin/` wrapper delegates to a library `run(RunConfig) -> String`
//! (`all_experiments` iterates the same list below), so exercising the entry
//! points here covers every binary without spawning processes.

use hc_bench::experiments as exp;
use hc_bench::RunConfig;

type Experiment = fn(RunConfig) -> String;

/// Every experiment entry point, mirroring `src/bin/all_experiments.rs`.
const EXPERIMENTS: &[(&str, Experiment)] = &[
    ("fig2", exp::fig2::run),
    ("fig3", exp::fig3::run),
    ("fig5", exp::fig5::run),
    ("fig6", exp::fig6::run),
    ("fig7", exp::fig7::run),
    ("thm2_scaling", exp::thm2_scaling::run),
    ("thm4_factor", exp::thm4_factor::run),
    ("appendix_e", exp::appendix_e::run),
    ("ablation_branching", exp::ablation_branching::run),
    ("ablation_budget", exp::ablation_budget::run),
    ("ablation_wavelet", exp::ablation_wavelet::run),
    ("ablation_matrix", exp::ablation_matrix::run),
    ("ablation_nonneg", exp::ablation_nonneg::run),
    ("ablation_geometric", exp::ablation_geometric::run),
    ("ablation_quadtree", exp::ablation_quadtree::run),
    ("accuracy_planner", exp::accuracy_planner::run),
];

#[test]
fn every_experiment_runs_quick_without_panicking() {
    for (name, run) in EXPERIMENTS {
        let out = run(RunConfig::quick());
        assert!(
            !out.trim().is_empty(),
            "experiment `{name}` produced no output in --quick mode"
        );
    }
}

#[test]
fn quick_runs_are_reproducible_for_a_fixed_seed() {
    // The workspace seed policy (hc_noise::seeds): all randomness derives
    // from RunConfig::seed through SeedStream, so two runs with the same
    // configuration must emit byte-identical reports.
    for (name, run) in EXPERIMENTS {
        let a = run(RunConfig::quick());
        let b = run(RunConfig::quick());
        assert_eq!(a, b, "experiment `{name}` is not reproducible");
    }
}

#[test]
fn changing_the_seed_changes_randomized_output() {
    // Guards against entry points ignoring RunConfig::seed. fig2 is the one
    // deliberately deterministic worked example, so probe fig5 (mechanism
    // sampling drives its error tables).
    let base = RunConfig::quick();
    let reseeded = RunConfig {
        seed: base.seed + 1,
        ..base
    };
    let a = (exp::fig5::run as Experiment)(base);
    let b = (exp::fig5::run as Experiment)(reseeded);
    assert_ne!(a, b, "fig5 output ignores RunConfig::seed");
}

#[test]
fn quick_config_matches_integration_budget() {
    let cfg = RunConfig::quick();
    assert!(cfg.quick);
    assert_eq!(cfg.trials, 5, "quick mode must stay cheap for CI");
}
