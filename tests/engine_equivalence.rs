//! Cross-engine equivalence: the level-indexed engine vs the Theorem-3
//! reference oracle vs the generic `hc-linalg` OLS solve, over randomly
//! sampled tree shapes — the trust harness demanded by ISSUE 2 and extended
//! by ISSUE 3's allocation-free pipeline.
//!
//! The contracts pinned here:
//!
//! * engine ≡ `hierarchical_inference` within 1e-9 on every sampled shape
//!   (the uniform path is in fact bit-identical, which is asserted too);
//! * engine ≡ the dense OLS projection on small shapes (the "don't trust
//!   either closed form" check);
//! * a batch of N trials ≡ N single runs, bit for bit, under pinned seeds;
//! * the slab-tiled sweeps ≡ the untiled level sweeps, bit for bit;
//! * the work-stealing parallel passes ≡ the serial sweep, bit for bit;
//! * the weighted (per-level GLS) tables ≡ the per-node weighted oracle;
//! * the engine's level-sweep zeroing ≡ the `enforce_nonnegativity` walk
//!   (including the `<= 0.0` boundary and parent-zeroed cascades);
//! * `release_and_infer(_rounded)` ≡ release-then-infer through the old
//!   owned-release path at the same seed, bit for bit.

use hc_testutil::assert_close;
use hist_consistency::linalg::{lstsq, Matrix};
use hist_consistency::prelude::*;
use proptest::prelude::*;
use rand::Rng;

fn random_noisy(shape: &TreeShape, seed: u64) -> Vec<f64> {
    let mut rng = rng_from_seed(seed);
    (0..shape.nodes())
        .map(|_| rng.random_range(-50.0..120.0))
        .collect()
}

proptest! {
    #[test]
    fn engine_matches_reference_on_random_shapes(
        k in 2usize..6,
        height in 1usize..7,
        seed in any::<u64>(),
    ) {
        let shape = TreeShape::new(k, height);
        let noisy = random_noisy(&shape, seed);
        let reference = hierarchical_inference(&shape, &noisy);
        let engine = LevelTree::new(&shape).infer(&noisy);
        assert_close(&engine, &reference, 1e-9);
        // The uniform tables use the oracle's own expressions: exact match.
        prop_assert_eq!(engine, reference);
    }

    #[test]
    fn engine_matches_generic_ols_on_small_shapes(
        k in 2usize..5,
        height in 2usize..5,
        seed in any::<u64>(),
    ) {
        let shape = TreeShape::new(k, height);
        let noisy = random_noisy(&shape, seed);

        let a = Matrix::from_fn(shape.nodes(), shape.leaves(), |v, leaf| {
            if shape.leaf_span(v).contains(leaf) { 1.0 } else { 0.0 }
        });
        let x = lstsq(&a, &noisy).expect("aggregation matrix has full column rank");
        let ols = a.matvec(&x).expect("dimensions match");

        let engine = LevelTree::new(&shape).infer(&noisy);
        assert_close(&engine, &ols, 1e-7);
    }

    #[test]
    fn batch_of_n_is_bit_identical_to_n_single_runs(
        k in 2usize..4,
        height in 1usize..6,
        trials in 1usize..9,
        seed in any::<u64>(),
    ) {
        let shape = TreeShape::new(k, height);
        let tree = LevelTree::new(&shape);
        let n = shape.nodes();
        let mut batch = Vec::with_capacity(trials * n);
        let mut singles = Vec::with_capacity(trials * n);
        for t in 0..trials {
            let noisy = random_noisy(&shape, seed.wrapping_add(t as u64));
            singles.extend(tree.infer(&noisy));
            batch.extend(noisy);
        }
        let mut engine = BatchInference::new(tree);
        prop_assert_eq!(&engine.infer_batch(&batch), &singles);
        prop_assert_eq!(&engine.infer_batch_parallel(&batch, 4), &singles);
    }

    #[test]
    fn parallel_subtree_passes_are_bit_identical_to_serial(
        k in 2usize..5,
        height in 3usize..7,
        threads in 2usize..9,
        seed in any::<u64>(),
    ) {
        let shape = TreeShape::new(k, height);
        let noisy = random_noisy(&shape, seed);
        let tree = LevelTree::new(&shape);
        prop_assert_eq!(tree.infer_parallel(&noisy, threads), tree.infer(&noisy));
    }

    #[test]
    fn weighted_engine_matches_weighted_oracle(
        k in 2usize..4,
        height in 1usize..6,
        seed in any::<u64>(),
    ) {
        let shape = TreeShape::new(k, height);
        let noisy = random_noisy(&shape, seed);
        let mut rng = rng_from_seed(seed ^ 0x5A5A);
        let level_vars: Vec<f64> = (0..height).map(|_| rng.random_range(0.1..25.0)).collect();
        let mut per_node = vec![0.0f64; shape.nodes()];
        for (d, &var) in level_vars.iter().enumerate() {
            for v in shape.level(d) {
                per_node[v] = var;
            }
        }
        let oracle = weighted_hierarchical_inference(&shape, &noisy, &per_node);
        let engine = LevelTree::with_level_variances(&shape, &level_vars);
        prop_assert_eq!(engine.infer(&noisy), oracle);
    }

    #[test]
    fn release_pipeline_is_engine_backed_and_consistent(
        domain_size in 1usize..70,
        seed in any::<u64>(),
    ) {
        // End to end: TreeRelease::infer (engine) ≡ oracle over the same
        // noisy vector, and the result satisfies the constraints.
        let domain = Domain::new("x", domain_size).unwrap();
        let mut rng = rng_from_seed(seed);
        let counts: Vec<u64> = (0..domain_size).map(|_| rng.random_range(0u64..9)).collect();
        let histogram = Histogram::from_counts(domain, counts);
        let release = HierarchicalUniversal::binary(Epsilon::new(0.5).unwrap())
            .release(&histogram, &mut rng);
        let tree = release.infer();
        let oracle = hierarchical_inference(release.shape(), release.noisy_values());
        prop_assert_eq!(tree.node_values(), &oracle[..]);
        prop_assert!(tree.max_consistency_violation() < 1e-9);
    }

    #[test]
    fn tiled_sweeps_match_untiled_bit_for_bit(
        k in 2usize..5,
        height in 1usize..8,
        seed in any::<u64>(),
    ) {
        let shape = TreeShape::new(k, height);
        let noisy = random_noisy(&shape, seed);
        let tree = LevelTree::new(&shape);
        prop_assert_eq!(tree.infer(&noisy), tree.infer_untiled(&noisy));
    }

    #[test]
    fn engine_zeroing_matches_reference_walk(
        k in 2usize..5,
        height in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Values straddling zero so subtree zeroing fires; the engine's
        // top-down level sweep must match the per-node parent() walk bit
        // for bit, and the fused zero+round must equal zero-then-round.
        let shape = TreeShape::new(k, height);
        let mut rng = rng_from_seed(seed);
        let values: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(-4.0..4.0))
            .collect();
        let tree = LevelTree::new(&shape);
        let reference = enforce_nonnegativity(&shape, &values);
        let mut swept = values.clone();
        tree.zero_subtrees_in_place(&mut swept);
        prop_assert_eq!(&swept, &reference);

        let mut rounded_reference = reference;
        for v in &mut rounded_reference {
            *v = Rounding::NonNegativeInteger.apply(*v);
        }
        let mut fused = values;
        tree.zero_round_in_place(&mut fused);
        prop_assert_eq!(fused, rounded_reference);
    }

    #[test]
    fn engine_zeroing_pins_boundary_and_cascades(
        height in 2usize..6,
        zero_at in any::<u64>(),
        negate_zero in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Plant an exact ±0.0 at an arbitrary node: its subtree must zero
        // wholesale (the `<= 0.0` boundary), cascading through positive
        // descendants, exactly as the reference walk decides.
        let shape = TreeShape::new(2, height);
        let mut rng = rng_from_seed(seed);
        let mut values: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(0.5..4.0)) // strictly positive elsewhere
            .collect();
        let v = (zero_at as usize) % shape.nodes();
        values[v] = if negate_zero { -0.0 } else { 0.0 };
        let reference = enforce_nonnegativity(&shape, &values);
        let mut swept = values;
        LevelTree::new(&shape).zero_subtrees_in_place(&mut swept);
        prop_assert_eq!(&swept, &reference);
        // The planted node's whole leaf span is zeroed.
        let span = shape.leaf_span(v);
        for leaf in span.lo()..=span.hi() {
            prop_assert_eq!(swept[shape.leaf_node(leaf)], 0.0);
        }
    }

    #[test]
    fn release_and_infer_matches_old_path_at_fixed_seeds(
        domain_size in 1usize..70,
        seed in any::<u64>(),
    ) {
        // The fused allocation-free trial ≡ owned release → infer(_rounded)
        // through the estimator types, bit for bit, at the same RNG state.
        let domain = Domain::new("x", domain_size).unwrap();
        let mut rng = rng_from_seed(seed ^ 0xC0FFEE);
        let counts: Vec<u64> = (0..domain_size).map(|_| rng.random_range(0u64..6)).collect();
        let histogram = Histogram::from_counts(domain, counts);
        let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.4).unwrap());
        let prepared = pipeline.prepare(domain_size);
        let shape = TreeShape::for_domain(domain_size, 2);
        let mut engine = BatchInference::for_shape(&shape);
        let mut out = Vec::new();

        engine.release_and_infer(&prepared, &histogram, &mut rng_from_seed(seed), &mut out);
        let old = pipeline.release(&histogram, &mut rng_from_seed(seed)).infer();
        prop_assert_eq!(&out[..], old.node_values());

        engine.release_and_infer_rounded(
            &prepared, &histogram, &mut rng_from_seed(seed), &mut out,
        );
        let old_rounded = pipeline
            .release(&histogram, &mut rng_from_seed(seed))
            .infer_rounded();
        prop_assert_eq!(&out[..], old_rounded.node_values());
    }

    #[test]
    fn work_stealing_parallel_matches_serial_across_splits(
        k in 2usize..4,
        height in 3usize..9,
        threads in 2usize..17,
        seed in any::<u64>(),
    ) {
        // Thread counts beyond the old one-worker-per-root-subtree cap:
        // the split depth (and so the job count) varies with `threads`,
        // and every configuration must reproduce the serial bits.
        let shape = TreeShape::new(k, height);
        let noisy = random_noisy(&shape, seed);
        let tree = LevelTree::new(&shape);
        let serial = tree.infer(&noisy);
        prop_assert_eq!(tree.infer_parallel(&noisy, threads), serial);
    }
}
