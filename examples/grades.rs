//! The introduction's motivating scenario: a student-grade database where
//! the analyst needs the per-grade counts, the number of passing students,
//! and the total — and the naive strategies force a bad trade-off.
//!
//! Strategy 1 (unit counts only): accurate grades, noisy aggregates.
//! Strategy 2 (ask everything):   inconsistent answers (x_t ≠ x_p + x_F).
//! The paper's answer: ask the hierarchical query and *infer* — consistent,
//! and more accurate than either.
//!
//! ```sh
//! cargo run --release --example grades
//! ```

use hist_consistency::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Grades A, B, C, D, F with counts from a class of 200.
    // (Domain padded to 8 leaves internally by the binary hierarchy; the
    // passing grades occupy the aligned prefix [0, 3], so "passing" is a
    // single tree node — exactly the x_p constraint of the introduction.)
    let grades = ["A", "B", "C", "D", "F"];
    let domain = Domain::new("grade", 5)?;
    let histogram = Histogram::from_counts(domain, vec![38, 72, 51, 24, 15]);
    let epsilon = Epsilon::new(0.5)?;
    let mut rng = rng_from_seed(11);

    let passing = Interval::new(0, 3); // x_p = A + B + C + D
    let total = Interval::new(0, 4); // x_t
    let truth_passing = histogram.range_count(passing);
    let truth_total = histogram.range_count(total);

    // --- Strategy 1: unit counts, aggregates by summation ------------------
    let flat = FlatUniversal::new(epsilon).release(&histogram, &mut rng);
    println!("Strategy 1 — noisy unit counts, sum for aggregates:");
    for (g, v) in grades.iter().zip(flat.counts()) {
        println!("  x_{g} = {v:7.2}");
    }
    println!(
        "  x_p = {:7.2}   (true {truth_passing}; noise accumulated over 4 counts)",
        flat.range_query(passing, Rounding::None)
    );
    println!(
        "  x_t = {:7.2}   (true {truth_total}; noise accumulated over 5 counts)\n",
        flat.range_query(total, Rounding::None)
    );

    // --- Strategy 2: the hierarchical query + constrained inference --------
    let release = HierarchicalUniversal::binary(epsilon).release(&histogram, &mut rng);

    // Before inference the answers are inconsistent: the released count for
    // an interval disagrees with the sum of the released counts of its two
    // halves — exactly the two-estimates-for-x_p problem of the intro.
    // (Node 1 of the tree covers A–D = x_p; nodes 3 and 4 are its halves.)
    let raw = release.noisy_values();
    let raw_passing = raw[1];
    let halves = raw[3] + raw[4];
    println!("Strategy 2 — hierarchical release, before inference:");
    println!(
        "  x_p asked directly      = {raw_passing:7.2}\n  x_(A+B) + x_(C+D)       = {halves:7.2}"
    );
    println!(
        "  two conflicting answers for the same quantity; gap = {:+.2}\n",
        raw_passing - halves
    );

    let tree = release.infer();
    let inf_total = tree.range_query(total);
    let inf_passing = tree.range_query(passing);
    let inf_f = tree.range_query(Interval::new(4, 4));
    println!("After constrained inference (Theorem 3):");
    for (i, g) in grades.iter().enumerate() {
        println!(
            "  x_{g} = {:7.2}   (true {})",
            tree.range_query(Interval::new(i, i)),
            histogram.counts()[i]
        );
    }
    println!("  x_p = {inf_passing:7.2}   (true {truth_passing})");
    println!("  x_t = {inf_total:7.2}   (true {truth_total})");
    println!(
        "  consistency restored: x_t − (x_p + x_F) = {:+.2e}",
        inf_total - (inf_passing + inf_f)
    );
    println!(
        "\nThe released answers satisfy the defining constraints x_p = Σ passing grades and\n\
         x_t = x_p + x_F exactly, and Theorem 4 guarantees the range estimates are the best\n\
         any linear unbiased post-processing of this release can do."
    );
    Ok(())
}
