//! A universal histogram over a network trace: release once, answer any
//! range count — the Sec. 5.2 scenario, including the sparse-region win of
//! the Sec. 4.2 non-negativity heuristic.
//!
//! ```sh
//! cargo run --release --example network_trace
//! ```

use hist_consistency::data::generators::{NetTrace, NetTraceConfig};
use hist_consistency::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rng_from_seed(31);
    let trace = NetTrace::generate(
        NetTraceConfig {
            hosts: 1 << 12,
            active_fraction: 0.25,
            subnet_blocks: 8,
            connections: 30_000,
            exponent: 1.3,
        },
        &mut rng,
    );
    let histogram = trace.histogram();
    println!(
        "Trace: {} external hosts, {} connections, {:.0}% of hosts silent",
        histogram.len(),
        histogram.total(),
        100.0 * histogram.sparsity()
    );

    // One ε-DP release of the binary interval tree supports every query
    // below; sensitivity is the tree height ℓ = 13.
    let epsilon = Epsilon::new(0.1)?;
    let release = HierarchicalUniversal::binary(epsilon).release(&histogram, &mut rng);
    println!(
        "Released {} noisy tree counts at {} (noise scale {:.0} per count)\n",
        release.noisy_values().len(),
        epsilon,
        release.shape().height() as f64 / epsilon.value(),
    );

    // The Sec. 5.2 estimator: inference + subtree zeroing + rounding.
    let tree = release.infer_rounded();

    let n = histogram.len();
    let queries = [
        ("all traffic", Interval::new(0, n - 1)),
        ("first /14 block", Interval::new(0, n / 4 - 1)),
        ("one /18 block", Interval::new(n / 2, n / 2 + n / 64 - 1)),
        ("single host", Interval::new(3 * n / 4, 3 * n / 4)),
    ];
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "query", "true", "H̄", "H~ raw"
    );
    for (label, q) in queries {
        println!(
            "{:<18} {:>12} {:>12.0} {:>12.1}",
            label,
            histogram.range_count(q),
            tree.range_query(q),
            release.range_query_subtree(q, Rounding::None),
        );
    }

    // The sparse-region effect: average error over empty unit ranges, with
    // and without the Sec. 4.2 zeroing, against the flat baseline.
    let empty_bins: Vec<usize> = (0..n)
        .filter(|&i| histogram.counts()[i] == 0)
        .take(2000)
        .collect();
    let raw_tree = release.infer();
    let flat = FlatUniversal::new(epsilon).release(&histogram, &mut rng);
    let (mut flat_err, mut raw_err, mut zeroed_err) = (0.0, 0.0, 0.0);
    for &bin in &empty_bins {
        let q = Interval::new(bin, bin);
        flat_err += flat.range_query(q, Rounding::NonNegativeInteger).powi(2);
        raw_err += raw_tree.range_query(q).powi(2);
        zeroed_err += tree.range_query(q).powi(2);
    }
    let m = empty_bins.len() as f64;
    println!(
        "\nEmpty-bin mean squared error over {} silent hosts:\n  \
         H̄ without zeroing:       {:9.2}\n  \
         H̄ with Sec. 4.2 zeroing: {:9.2}\n  \
         L~ (rounded unit counts): {:9.2}",
        empty_bins.len(),
        raw_err / m,
        zeroed_err / m,
        flat_err / m,
    );
    println!(
        "\nThe tree *observes* that whole regions are silent and zeroes them (Sec. 4.2),\n\
         cutting H̄'s empty-bin error several-fold. On the paper's (much sparser) real\n\
         trace this effect was strong enough for H̄ to beat L~ even at unit ranges; on\n\
         this synthetic trace L~ keeps its unit-range edge while H̄ wins everywhere else\n\
         — see EXPERIMENTS.md for the full measured comparison."
    );
    Ok(())
}
