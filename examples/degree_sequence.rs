//! Private degree-sequence estimation for a social network — the paper's
//! flagship unattributed-histogram application (Secs. 3, 5.1), extended with
//! the Appendix B future-work step: repairing the estimate into a
//! *graphical* sequence (Erdős–Gallai).
//!
//! ```sh
//! cargo run --release --example degree_sequence
//! ```

use hist_consistency::data::generators::{SocialNetwork, SocialNetworkConfig};
use hist_consistency::ext::graphical::{graphical_from_inferred, is_graphical};
use hist_consistency::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rng_from_seed(23);

    // Build a friendship graph (preferential attachment, 2000 students).
    let network = SocialNetwork::generate(
        SocialNetworkConfig {
            nodes: 2_000,
            edges_per_node: 4,
        },
        &mut rng,
    );
    let histogram = network.degree_histogram();
    let truth: Vec<f64> = histogram
        .sorted_counts()
        .into_iter()
        .map(|c| c as f64)
        .collect();
    println!(
        "Graph: {} vertices, {} edges, degree range {:.0}..{:.0}, {} distinct degrees",
        network.graph().vertex_count(),
        network.graph().edge_count(),
        truth.first().copied().unwrap_or(0.0),
        truth.last().copied().unwrap_or(0.0),
        histogram.distinct_count_values(),
    );

    // Release the sorted degree sequence under ε-differential privacy: one
    // friendship more or less changes the answer by 1 in L1 (Prop. 3), so
    // the noise is Lap(1/ε) per position regardless of graph size.
    let epsilon = Epsilon::new(0.1)?;
    let task = UnattributedHistogram::new(epsilon);
    let release = task.release(&histogram, &mut rng);

    let baseline_err = sum_squared_error(release.baseline(), &truth);
    let inferred = release.inferred();
    let inferred_err = sum_squared_error(&inferred, &truth);
    println!("\nAt {epsilon}:");
    println!("  error(S~)  = {baseline_err:11.1}   (raw noisy release)");
    println!(
        "  error(S̄)  = {inferred_err:11.1}   (isotonic inference, {:.0}x better)",
        baseline_err / inferred_err
    );

    // Appendix B extension: force the estimate to be realizable as a graph.
    let graphical = graphical_from_inferred(&inferred);
    assert!(is_graphical(&graphical));
    let graphical_f64: Vec<f64> = graphical.iter().map(|&d| d as f64).collect();
    let mut graphical_sorted = graphical_f64.clone();
    graphical_sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let graphical_err = sum_squared_error(&graphical_sorted, &truth);
    println!("  error(S̄ → graphical repair) = {graphical_err:.1}   (now a valid degree sequence)",);

    // Show a slice of the tail (the hubs) — where individual degrees matter.
    println!("\nTop-5 degrees (true vs private estimate):");
    let n = truth.len();
    for i in (n - 5)..n {
        println!(
            "  rank {:4}: true {:4.0}   S~ {:7.2}   S̄ {:7.2}",
            i + 1,
            truth[i],
            release.baseline()[i],
            inferred[i]
        );
    }
    Ok(())
}
