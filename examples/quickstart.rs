//! Quickstart: the full three-step pipeline of the paper (Fig. 1) on the
//! running example — choose a constrained query, release it privately,
//! resolve inconsistencies by constrained inference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hist_consistency::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's example trace (Fig. 2): four source addresses with
    // per-address connection counts ⟨2, 0, 10, 2⟩.
    let domain = Domain::new("src", 4)?;
    let histogram = Histogram::from_counts(domain, vec![2, 0, 10, 2]);
    let mut rng = rng_from_seed(7);
    let epsilon = Epsilon::new(1.0)?;

    println!("True counts L(I) = {:?}\n", histogram.counts());

    // ---- Task 1: unattributed histogram (Sec. 3) --------------------------
    // Step 1: the analyst asks for the counts in sorted order — the ordering
    // is a constraint the noisy answers can be projected back onto.
    let task = UnattributedHistogram::new(epsilon);
    // Step 2: the data owner releases with the Laplace mechanism. This is
    // the only step that touches private data.
    let release = task.release(&histogram, &mut rng);
    println!(
        "S~ (noisy sorted counts)  = {:?}",
        rounded(release.baseline())
    );
    // Step 3: constrained inference — minimum-L2 ordered sequence.
    let inferred = release.inferred();
    println!("S̄ (after inference)      = {:?}", rounded(&inferred));
    println!(
        "true sorted counts        = {:?}\n",
        histogram.sorted_counts()
    );

    // ---- Task 2: universal histogram (Sec. 4) -----------------------------
    // Step 1: a binary tree of interval counts (sensitivity ℓ = 3 here).
    let pipeline = HierarchicalUniversal::binary(epsilon);
    // Step 2: private release of all 7 tree counts.
    let tree_release = pipeline.release(&histogram, &mut rng);
    println!(
        "H~ (noisy tree)           = {:?}",
        rounded(tree_release.noisy_values())
    );

    // The raw release is inconsistent: the root rarely equals the total of
    // its children. Constrained inference fixes that and provably reduces
    // range-query error (Theorem 4).
    let tree = tree_release.infer();
    println!(
        "H̄ (consistent tree)      = {:?}",
        rounded(tree.node_values())
    );
    println!(
        "consistency violation     = {:.2e}\n",
        tree.max_consistency_violation()
    );

    // Any range query can now be answered, consistently.
    for (label, interval) in [
        ("total                 [0,3]", Interval::new(0, 3)),
        ("first two addresses   [0,1]", Interval::new(0, 1)),
        ("busiest address       [2,2]", Interval::new(2, 2)),
    ] {
        println!(
            "range {label}: estimate {:7.2}   (true {})",
            tree.range_query(interval),
            histogram.range_count(interval)
        );
    }
    Ok(())
}

fn rounded(values: &[f64]) -> Vec<f64> {
    values.iter().map(|v| (v * 100.0).round() / 100.0).collect()
}
