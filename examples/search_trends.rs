//! Private search-trend analytics over a keyword time series — the Fig. 6
//! Search Logs scenario, plus a comparison with the Haar-wavelet mechanism
//! the related-work section discusses.
//!
//! ```sh
//! cargo run --release --example search_trends
//! ```

use hist_consistency::data::generators::{SearchLogs, SearchLogsConfig};
use hist_consistency::ext::wavelet::WaveletUniversal;
use hist_consistency::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rng_from_seed(47);
    let logs = SearchLogs::generate(
        SearchLogsConfig {
            bins: 1 << 12,
            base_rate: 0.2,
            bursts: 12,
            election_peak: 300.0,
        },
        &mut rng,
    );
    let histogram = logs.histogram().clone();
    let n = histogram.len();
    println!(
        "Series: {} bins (16/day), {} total searches for the tracked term",
        n,
        histogram.total()
    );

    let epsilon = Epsilon::new(0.1)?;
    let tree = HierarchicalUniversal::binary(epsilon)
        .release(&histogram, &mut rng)
        .infer_rounded();
    let wavelet = WaveletUniversal::new(epsilon).release(&histogram, &mut rng);

    // Weekly aggregates across the series: 16 bins/day × 7 days.
    let week = 16 * 7;
    println!("\nWeekly totals (every 8th week shown):");
    println!("{:>6} {:>10} {:>10} {:>10}", "week", "true", "H̄", "wavelet");
    let mut w = 0;
    while (w + 1) * week <= n {
        if w % 8 == 0 {
            let q = Interval::new(w * week, (w + 1) * week - 1);
            println!(
                "{:>6} {:>10} {:>10.0} {:>10.1}",
                w,
                histogram.range_count(q),
                tree.range_query(q),
                wavelet.range_query(q),
            );
        }
        w += 1;
    }

    // The election window: the high-mass region near 85% of the series.
    let spike_center = n * 85 / 100;
    let window = Interval::new(spike_center - week, spike_center + week - 1);
    println!(
        "\nElection fortnight [{}..{}]: true {}, H̄ {:.0}, wavelet {:.1}",
        window.lo(),
        window.hi(),
        histogram.range_count(window),
        tree.range_query(window),
        wavelet.range_query(window),
    );

    // Quiet-period query: early in the series almost nothing happens.
    let quiet = Interval::new(0, n / 8 - 1);
    println!(
        "Quiet early eighth     : true {}, H̄ {:.0}, wavelet {:.1}",
        histogram.range_count(quiet),
        tree.range_query(quiet),
        wavelet.range_query(quiet),
    );

    println!(
        "\nBoth mechanisms release sensitivity-ℓ structures and support arbitrary range\n\
         queries with poly-log error; Li et al. (PODS 2010) showed they are equivalent\n\
         up to constants, and the `ablation_wavelet` experiment measures exactly that."
    );
    Ok(())
}
