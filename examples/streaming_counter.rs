//! A differentially private continual counter over a live event stream —
//! the Chan–Shi–Song construction from the paper's related work, built from
//! the same tree machinery as `H` and post-processed with the same isotonic
//! solver as `S̄`.
//!
//! Scenario: a service must publish a running count of security incidents
//! every hour without revealing whether any single report occurred.
//!
//! ```sh
//! cargo run --release --example streaming_counter
//! ```

use hist_consistency::ext::continual::ContinualCounter;
use hist_consistency::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rng_from_seed(59);

    // One week of hourly incident counts: quiet nights, a burst mid-week.
    let horizon = 168;
    let stream: Vec<u64> = (0..horizon)
        .map(|h| {
            let hour_of_day = h % 24;
            let base = u64::from((9..18).contains(&hour_of_day));
            let burst = if (80..92).contains(&h) { 4 } else { 0 };
            base + burst
        })
        .collect();
    let true_totals: Vec<f64> = stream
        .iter()
        .scan(0.0, |acc, &x| {
            *acc += x as f64;
            Some(*acc)
        })
        .collect();

    let epsilon = Epsilon::new(0.5)?;
    let counter = ContinualCounter::new(epsilon, horizon);
    let release = counter.process(&stream, &mut rng);

    // Raw hierarchical prefixes vs the monotone-projected series.
    let raw = release.prefix_series();
    let mono = release.monotonized();

    println!("hour  true  released  monotonized");
    for h in (0..horizon).step_by(24) {
        println!(
            "{h:>4}  {:>4}  {:>8.1}  {:>11.1}",
            true_totals[h], raw[h], mono[h]
        );
    }
    let last = horizon - 1;
    println!(
        "{last:>4}  {:>4}  {:>8.1}  {:>11.1}",
        true_totals[last], raw[last], mono[last]
    );

    let raw_err = sum_squared_error(&raw, &true_totals);
    let mono_err = sum_squared_error(&mono, &true_totals);
    println!(
        "\nsum squared error over all {horizon} steps: released {raw_err:.1}, \
         monotonized {mono_err:.1} ({:.1}x better)",
        raw_err / mono_err
    );
    println!(
        "\nEach report influences only log T + 1 released values, so the whole week of\n\
         publications costs a single ε = 0.5. Running totals never decrease, so the\n\
         isotonic projection (the S̄ solver) is free post-processing accuracy."
    );
    Ok(())
}
