//! Offline stand-in for the subset of the `proptest` crate this workspace's
//! property tests use.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements just enough of proptest's surface to run `tests/proptests.rs`:
//! the [`Strategy`] trait over ranges / tuples / collections, [`any`] for
//! integer types, `prop::collection::vec`, and panic-based `prop_assert!` /
//! `prop_assert_eq!`. There is **no shrinking**: a failing case reports its
//! seed and iteration so it can be replayed, but is not minimized.
//!
//! Each `proptest!` test runs `PROPTEST_CASES` (env, default 128) random
//! cases from a seed derived deterministically from the test's name, so
//! failures are reproducible run-to-run.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    /// The crate root under proptest's conventional `prop` alias, so
    /// `prop::collection::vec(..)` resolves.
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of random test values (stand-in for `proptest::strategy::Strategy`).
///
/// Unlike real proptest there is no value tree: `generate` draws one concrete
/// value, and failing cases are replayed by seed rather than shrunk.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// A strategy producing any value of `T` (stand-in for `proptest::arbitrary`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Creates the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Types with a standard full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Number of cases per property (env `PROPTEST_CASES`, default 128).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Deterministic per-test master seed (FNV-1a of the test name).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derives the RNG for one case of one test.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    StdRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32 | 0x9e37))
}

/// Asserts inside a property; panics with the offending values on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Declares property tests (stand-in for `proptest::proptest!`).
///
/// Each declared function becomes a `#[test]` running [`cases`] random
/// cases; a failing case's panic message is prefixed with the case number so
/// it can be replayed with the same deterministic seed derivation.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut proptest_case_rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_case_rng);
                    )+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{cases} of `{}` failed (deterministic seed; rerun reproduces it)",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
