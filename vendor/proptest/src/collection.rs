//! Collection strategies (`proptest::collection`).

use crate::{Strategy, TestRng};
use rand::Rng;

/// Size specification for collection strategies: an exact size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        Self {
            lo,
            hi_exclusive: hi + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
