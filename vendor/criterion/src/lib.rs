//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this vendored crate
//! keeps the bench targets compiling and runnable. It is a *measuring*
//! harness, not a statistical one: each benchmark is warmed up briefly, then
//! timed over several independent short windows, and the **minimum**
//! time/iteration across windows is printed and recorded (the
//! lower-envelope estimate the `bench_diff` CI gate compares — far less
//! flicker-prone on shared runners than a single window's point estimate).
//! Swap in real criterion for publication-grade numbers once the registry
//! is reachable.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Compatibility no-op (criterion runs `final_summary` after all groups).
    pub fn final_summary(&mut self) {}
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Runs a parameterized benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// A bare-parameter id (the group name supplies the function part).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    /// Best (minimum) seconds/iteration observed over the measurement
    /// windows — the reported statistic (see [`Bencher::iter`]).
    best_per_iter: Option<f64>,
}

/// Whether the bench binary was invoked with `--quick` (real criterion's
/// fast-run flag): shrink warm-up and the measurement window so a full
/// bench suite doubles as a runtime smoke test in CI.
fn quick_mode() -> bool {
    static QUICK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().any(|a| a == "--quick"))
}

impl Bencher {
    /// Times `routine` over `N` independent measurement windows and keeps
    /// the **minimum** time/iteration across them as the reported statistic.
    ///
    /// A single short window's point estimate is at the mercy of whatever
    /// else the (shared CI) machine is doing; the minimum over several
    /// windows is a far more stable lower-envelope estimate, which is what
    /// the `bench_diff` regression gate compares. Every window runs at
    /// least one iteration (the window is checked before each call), so
    /// whenever any iteration ran at all the minimum is defined.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Quick mode runs more (short) windows rather than longer ones: on a
        // shared runner the min-of-windows estimator only recovers the true
        // floor if at least one window dodges the neighbors, and large-buffer
        // labels (≈5 ms/iter) degenerate to one iteration per window, so the
        // window *count* is the only knob that buys more chances.
        let (warmup, window, cap, windows) = if quick_mode() {
            (1, Duration::from_millis(5), 20, 9)
        } else {
            (3, Duration::from_millis(60), 10_000, 3)
        };
        // Warm-up: a handful of calls so lazy init and caches settle.
        for _ in 0..warmup {
            black_box(routine());
        }
        // Measure: per window, run until it fills or the iteration cap
        // hits; track the best window's time/iteration. Every window runs
        // at least two iterations — a window estimate is never a single
        // sample, so one scheduler preemption cannot poison a whole window
        // on labels whose single iteration already exceeds the window.
        for _ in 0..windows {
            let start = Instant::now();
            let mut iters = 0u64;
            while (start.elapsed() < window || iters < 2) && iters < cap {
                black_box(routine());
                iters += 1;
            }
            let elapsed = start.elapsed();
            self.elapsed += elapsed;
            self.iters_done += iters;
            if iters > 0 {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                self.best_per_iter = Some(match self.best_per_iter {
                    Some(best) => best.min(per_iter),
                    None => per_iter,
                });
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        best_per_iter: None,
    };
    f(&mut bencher);
    if bencher.iters_done == 0 {
        println!("{label:<48} (no iterations recorded)");
        return;
    }
    // Min-of-windows: defined whenever any iteration ran (each window
    // executes at least one), which the guard above just established.
    let per_iter = bencher
        .best_per_iter
        .expect("iters_done > 0 implies a measured window");
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!("{label:<48} {:>12.3} µs/iter{rate}", per_iter * 1e6);
    emit_json(label, per_iter, throughput);
}

/// Appends one JSON line per benchmark to the file named by the
/// `BENCH_JSON` environment variable (no-op when unset) — the
/// machine-readable record CI uploads as an artifact so the perf trajectory
/// is tracked across PRs. Fields: the benchmark `label`, `ns_per_iter`, and
/// (when a throughput was declared) `elements_per_iter` + `ns_per_element`.
fn emit_json(label: &str, per_iter_secs: f64, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let ns_per_iter = per_iter_secs * 1e9;
    // Labels are group/parameter identifiers; escape the two JSON-special
    // characters they could conceivably contain.
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect();
    let line = match throughput {
        Some(Throughput::Elements(n)) => format!(
            "{{\"label\":\"{escaped}\",\"ns_per_iter\":{ns_per_iter:.1},\
             \"elements_per_iter\":{n},\"ns_per_element\":{:.4}}}\n",
            ns_per_iter / n as f64
        ),
        Some(Throughput::Bytes(n)) => format!(
            "{{\"label\":\"{escaped}\",\"ns_per_iter\":{ns_per_iter:.1},\
             \"bytes_per_iter\":{n}}}\n"
        ),
        None => format!("{{\"label\":\"{escaped}\",\"ns_per_iter\":{ns_per_iter:.1}}}\n"),
    };
    use std::io::Write;
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = file.write_all(line.as_bytes());
    }
}

/// Declares a group of benchmark functions (stand-in for criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
