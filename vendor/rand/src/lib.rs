//! Offline stand-in for the subset of the `rand` crate (0.9 API) used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the exact surface the workspace consumes — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`] — backed by a
//! seeded xoshiro256++ generator. All workspace randomness is seeded through
//! `hc_noise::seeds`, so OS entropy is deliberately not offered: every RNG
//! must be constructed from an explicit seed.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::{SampleRange, StandardUniform};

/// The subset of `rand::Rng` the workspace uses.
///
/// `next_u64` is the only required method; `random` and `random_range`
/// follow the rand 0.9 naming.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `out` with consecutive draws — exactly the bits that repeated
    /// [`Rng::next_u64`] calls would produce, in the same order.
    ///
    /// Generators should override this when their state would otherwise be
    /// spilled to memory between calls: `StdRng`'s override keeps the four
    /// xoshiro words in registers for the whole block, which is what the
    /// bulk noise kernels in `hc-noise` are built on. The default is the
    /// plain per-call loop, so any override is checked against it by the
    /// stream-equality tests.
    #[inline]
    fn fill_u64(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value from the standard uniform distribution of `T`
    /// (`[0, 1)` for floats, full range for integers, fair coin for `bool`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_u64(&mut self, out: &mut [u64]) {
        (**self).fill_u64(out)
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}
