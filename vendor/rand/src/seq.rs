//! Slice utilities (`rand::seq`).

use crate::Rng;

/// The subset of `rand::seq::SliceRandom` the workspace uses.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
            self.get(i)
        }
    }
}
