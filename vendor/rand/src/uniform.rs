//! Standard and ranged uniform sampling.

use core::ops::{Range, RangeInclusive};

use crate::Rng;

/// Types sampleable from their "standard" uniform distribution
/// (`rand::distr::StandardUniform` in rand 0.9).
pub trait StandardUniform: Sized {
    /// Draws one standard-uniform value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges sampleable uniformly (`rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling via Lemire's multiply-shift reduction.
/// The modulo bias for spans far below 2^64 is negligible for simulation use,
/// but widening-multiply keeps it unbiased enough and branch-light.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

sample_range_float!(f32, f64);
