//! Seeded generators.

use crate::{Rng, SeedableRng};

/// A deterministic PRNG with the same role as `rand::rngs::StdRng`.
///
/// Implemented as xoshiro256++ (Blackman & Vigna, 2019), seeded by expanding
/// a 64-bit seed through SplitMix64 — the seeding scheme xoshiro's authors
/// recommend. Not cryptographic; statistical quality is ample for the
/// simulation workloads in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl Rng for StdRng {
    // `#[inline]` matters here: without it (and without LTO) every draw from
    // another crate is an outlined call that spills the four-word state to
    // memory and back, which more than doubles the cost of the tight
    // block-draw loops in `hc-noise`. The real `rand` crate marks its core
    // generators the same way. Output bits are unaffected.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    // Same draw sequence as repeated `next_u64`, but the state words live in
    // locals for the whole block. Through a `&mut self` call the compiler
    // keeps `self.s` in memory and store-forwards it between draws (~3×
    // slower than the 2-cycle xoshiro dependency chain itself); hoisting the
    // four words out of `self` is what lets the block loop run at chain
    // latency. Verified bit-equal to the default implementation by
    // `fill_u64_matches_per_call_draws`.
    #[inline]
    fn fill_u64(&mut self, out: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for slot in out {
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            *slot = result;
        }
        self.s = [s0, s1, s2, s3];
    }
}
